#ifndef DACE_CORE_DACE_MODEL_H_
#define DACE_CORE_DACE_MODEL_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/estimator.h"
#include "core/prediction_cache.h"
#include "core/student.h"
#include "featurize/featurize.h"
#include "nn/kernels_f32.h"
#include "nn/layers.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dace::core {

class CheckpointReader;
class CheckpointWriter;

// Hyperparameters (paper Sec. V "Parameters Setting"). The defaults are the
// published configuration: a single encoder layer, single attention head,
// d = 18, d_k = d_v = 128, MLP 128→64→1 on top of the attention output,
// LoRA ranks 32/16/8, alpha = 0.5.
struct DaceConfig {
  int d_model = featurize::kFeatureDim;
  int d_k = 128;
  int d_v = 128;
  int hidden1 = 128;
  int hidden2 = 64;
  int lora_r1 = 32;
  int lora_r2 = 16;
  int lora_r3 = 8;

  // Featurization / ablation switches (Sec. V-E).
  double alpha = 0.5;               // loss-adjuster decay; 0 = w/o SP, 1 = w/o LA
  bool tree_attention = true;       // false = w/o TA
  bool use_actual_cardinality = false;  // DACE-A (Fig. 12)

  // Optimization.
  double learning_rate = 1e-3;
  // LoRA adapters tolerate (and benefit from) a hotter learning rate since
  // the frozen base anchors the function.
  double lora_learning_rate = 2e-3;
  int epochs = 12;
  // LoRA fine-tuning runs more epochs: the adapters are tiny, so each epoch
  // is ~2× cheaper than a pre-training epoch (Table II), and the fine-tune
  // corpus is typically smaller.
  int finetune_epochs = 40;
  int batch_size = 64;  // plans per Adam step
  uint64_t seed = 7;

  // Distilled student tier (DESIGN.md §14). The student is a small MLP
  // (kStudentFeatureDim → student_hidden1 → student_hidden2 → 2) trained on
  // the frozen teacher's predictions by Distill().
  int student_hidden1 = 32;
  int student_hidden2 = 16;
  int distill_epochs = 60;
  int distill_batch_size = 256;
  double distill_learning_rate = 2e-3;
  // Gate calibration: the escalation threshold τ is the
  // `escalation_quantile` quantile of (r̂ + q_bound) over the distillation
  // set, so roughly (1 - escalation_quantile) of in-distribution plans
  // escalate to the teacher.
  double escalation_quantile = 0.9;
};

// Summary of one training run.
struct TrainStats {
  double final_loss = 0.0;
  int epochs = 0;
  size_t num_plans = 0;
  double wall_ms = 0.0;
};

// The DACE network: tree-masked single-head attention over the node-feature
// sequence, then a three-layer MLP head predicting every sub-plan's cost in
// parallel (one output per DFS row). Works on PlanFeatures produced by a
// fitted Featurizer; see DaceEstimator below for the plan-level facade.
class DaceModel {
 public:
  explicit DaceModel(const DaceConfig& config);

  const DaceConfig& config() const { return config_; }

  // Pool used by the data-parallel paths; nullptr (default) means
  // ThreadPool::Default(). Training and batched inference are
  // bit-deterministic for ANY pool size: minibatch gradients accumulate into
  // per-chunk buffers keyed by batch position and reduce in chunk order, so
  // the arithmetic never depends on which thread ran what.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const {
    return pool_ != nullptr ? pool_ : ThreadPool::Default();
  }

  // Per-worker state for data-parallel training and allocation-free batched
  // inference: activation caches, gradient sinks and intermediates, all
  // reused across plans. After shapes warm up, a forward (or
  // forward/backward) pass through a Workspace performs no heap allocation.
  struct Workspace {
    nn::TreeAttention::Cache attn_c;
    nn::Linear::ExternalCache fc1_c, fc2_c, fc3_c;
    nn::TreeAttention::Gradients attn_g;
    nn::Linear::Gradients fc1_g, fc2_g, fc3_g;
    nn::Matrix attn, z1, h1, z2, h2, pred;                    // forward
    nn::Matrix dpred, dh2, dh2_pre, dh1, dh1_pre, dattn, ds;  // backward
    double loss = 0.0;  // per-chunk loss accumulator
  };

  // Pre-training: updates base weights (attention + MLP).
  TrainStats Train(const std::vector<featurize::PlanFeatures>& data);

  // LoRA fine-tuning (Eq. 8): attaches adapters on first call, freezes the
  // base weights, and updates only the adapters.
  TrainStats FineTuneLora(const std::vector<featurize::PlanFeatures>& data);

  // Seeded variant for background adaptation: reseeds the model RNG before
  // attaching adapters / shuffling, so the resulting weights are a pure
  // function of (current weights, data, seed) — bit-reproducible at any
  // thread count and independent of however many training runs advanced the
  // RNG before this call (the PR-1 chunked-reduction contract supplies the
  // thread-count half; the reseed supplies the history half).
  TrainStats FineTuneLora(const std::vector<featurize::PlanFeatures>& data,
                          uint64_t seed);

  // Distills the student tier (DESIGN.md §14): computes the frozen teacher's
  // root prediction for every plan of `data` in parallel, trains a fresh
  // StudentModel on (inputs row i → teacher prediction i), then calibrates
  // the serving gate — q_bound = max |ŷ_i8 − ŷ_f64| over the set, τ = the
  // config's escalation_quantile quantile of (r̂ + q_bound). `inputs` must
  // hold one StudentFeaturizeInto row per plan (floats widened to double, so
  // training sees bit-for-bit the serving input). Deterministic for any pool
  // size. Bumps weights_version(): the set of servable functions changed, so
  // cached predictions from before the student existed must not mix with
  // tiered ones.
  StudentTrainStats DistillStudent(
      const std::vector<featurize::PlanFeatures>& data,
      const nn::Matrix& inputs);

  // The distilled student, or nullptr before Distill / after any teacher
  // weight mutation (Train and FineTuneLora drop the student — its targets
  // went stale with the teacher).
  const StudentModel* student() const { return student_.get(); }
  bool has_student() const { return student_ != nullptr; }

  // Predicted scaled-log-time of the root (row 0).
  double PredictRoot(const featurize::PlanFeatures& features) const;

  // Predicted scaled-log-time of every DFS row (all sub-plans, in parallel).
  std::vector<double> PredictAll(const featurize::PlanFeatures& features) const;

  // Allocation-free variant: runs the forward pass through the caller's
  // workspace, writing one scaled-log-time per DFS row into *out. Const on
  // the weights — concurrent callers each bring their own workspace.
  void PredictAllInto(const featurize::PlanFeatures& features, Workspace* ws,
                      std::vector<double>* out) const;

  // Per-worker state for the packed multi-plan inference path: the pack
  // layout, the f64 packed activation tiles, and (when the f32 precision is
  // active) the float twins. Reused across packs; buffers reallocate only
  // when the pack shape grows past what the workspace has seen.
  struct PackedWorkspace {
    using FloatBuffer = std::vector<float, nn::AlignedAllocator<float>>;
    nn::PackLayout layout;
    std::vector<const nn::Matrix*> masks;
    // f64 path.
    nn::TreeAttention::PackedCache attn_c;
    nn::Linear::ExternalCache fc1_c, fc2_c, fc3_c;
    nn::Matrix s, attn, z1, h1, z2, h2, pred;
    // f32 path (sized lazily; empty unless f32 inference ran).
    FloatBuffer s32, mask32, q32, k32, v32, scores32, probs32, attn32, z132,
        z232;
    // All-rows extension: root sink for PredictPackedAllInto's f64 body
    // (the f32 all-rows head writes straight into the caller's rows).
    std::vector<double> roots_scratch;
  };

  // Packed batched inference (tentpole): prices every plan of `feats` in ONE
  // forward pass over a tightly packed tile set, writing each plan's root
  // scaled-log-time into (*roots)[b]. Dispatches on kernel::ActivePrecision:
  //   - kF64 runs the packed tile schedule through the same kernels as
  //     PredictAllInto, bit-identical per plan to the per-plan path;
  //   - kF32 runs the folded single-precision weight image (EnsureF32Weights
  //     must have been called since the last weight mutation) through the
  //     f32 kernel table, within the documented q-error budget (DESIGN §13).
  // Const on the weights — concurrent callers bring their own workspace.
  void PredictPackedInto(std::span<const featurize::PlanFeatures* const> feats,
                         PackedWorkspace* ws, std::vector<double>* roots) const;

  // All-rows packed inference: like PredictPackedInto, but (*rows)[b] gets
  // every DFS row's scaled-log-time for plan b (sub-plan predictions, index
  // 0 = root). At kF64 this is free — the packed f64 body already prices
  // every row — and bit-identical per row to PredictAllInto; the f32 path
  // runs an all-rows variant of the packed float schedule under the same
  // accuracy budget as the root-only path.
  void PredictPackedAllInto(
      std::span<const featurize::PlanFeatures* const> feats,
      PackedWorkspace* ws, std::vector<std::vector<double>>* rows) const;

  // Rebuilds the cached single-precision inference weights (LoRA adapters
  // folded into the base matrices, everything narrowed to float) if they are
  // stale with respect to weights_version(). NOT thread-safe: call on the
  // coordinating thread before fanning out f32 packed workers.
  void EnsureF32Weights() const;

  // Pre-trained-encoder API: the root row of the second hidden layer
  // (h2, 64-dim), the w_E of Eq. (9).
  std::vector<double> EncodeRoot(const featurize::PlanFeatures& features) const;
  int EncodingDim() const { return config_.hidden2; }

  size_t ParameterCount() const;      // base + adapters (if attached)
  size_t BaseParameterCount() const;  // excludes adapters
  size_t LoraParameterCount() const;
  bool lora_attached() const { return lora_attached_; }

  // Free-form provenance tag carried by format-1 checkpoints (optional
  // trailing kSectionLineage): who produced these weights and from what.
  // Never affects predictions, so setting it does not bump
  // weights_version(); it rides along through save/load and Clone.
  const std::string& lineage() const { return lineage_; }
  void set_lineage(std::string lineage) { lineage_ = std::move(lineage); }

  // Monotone counter identifying the current weights: bumped by every
  // mutation of the parameters (Train, FineTuneLora, Deserialize). Cached
  // predictions are valid exactly as long as this value is unchanged — the
  // prediction cache stores the version it was filled under and flushes on
  // mismatch.
  uint64_t weights_version() const { return weights_version_; }

  // Legacy (checkpoint format 0) body layout: attention, fc1, fc2, fc3
  // concatenated with no framing. Still the canonical flat weight image —
  // the determinism tests compare these bytes directly.
  void Serialize(ByteWriter* w) const;

  // Transactional load of the legacy body: every layer is parsed into
  // staging, every shape is validated against this model's config (including
  // LoRA rank consistency), and the reader must be fully consumed — only
  // then are the weights swapped in and weights_version_ bumped. On any
  // failure the live weights, LoRA state and version are untouched, so
  // cached predictions stay exactly as valid as they were.
  Status Deserialize(ByteReader* r);

  // Checkpoint-format-1 variants: the same payload bytes, one framed section
  // per component (plus, when the model is distilled, a trailing student
  // section). LoadSections has the same transactional contract as
  // Deserialize and additionally requires the checkpoint's section table to
  // end exactly after fc3 — or after the optional student section.
  void AppendSections(CheckpointWriter* w) const;
  Status LoadSections(CheckpointReader* r);

 private:
  // Forward + backward on one plan through `ws`: backpropagates the
  // loss-adjusted Huber loss on scaled log-time into the workspace's
  // gradient sinks. Const on the weights, so chunk workers run it
  // concurrently. Returns the plan's weighted loss.
  double ForwardBackward(const featurize::PlanFeatures& f, Workspace* ws) const;

  // Shapes and zeroes the gradient sinks of `ws` for the current layer set.
  void InitWorkspaceGradients(Workspace* ws) const;

  TrainStats RunTraining(const std::vector<featurize::PlanFeatures>& data,
                         bool lora_only);

  void SetTrainMode(bool train_base, bool train_lora);

  // Folded single-precision inference weights: W_eff = W + scale·A·B for the
  // MLP layers, raw narrowed projections for attention. `version` stamps the
  // weights_version_ the image was folded from; 0 = never built.
  struct F32Weights {
    using FloatBuffer = std::vector<float, nn::AlignedAllocator<float>>;
    uint64_t version = 0;
    FloatBuffer wq, wk, wv;          // (d_model × d_k/d_k/d_v)
    FloatBuffer w1, b1, w2, b2, w3, b3;  // LoRA-folded MLP
    float inv_sqrt_dk = 1.0f;
  };

  // f64 / f32 bodies behind PredictPackedInto, after the layout and the
  // packed feature tiles are assembled.
  void ForwardPackedF64(
      std::span<const featurize::PlanFeatures* const> feats,
      PackedWorkspace* ws, std::vector<double>* roots) const;
  void ForwardPackedF32(
      std::span<const featurize::PlanFeatures* const> feats,
      PackedWorkspace* ws, std::vector<double>* roots) const;
  // All-rows twin of ForwardPackedF32: Q/scores/softmax/context run for
  // every packed row instead of one row per plan.
  void ForwardPackedAllF32(
      std::span<const featurize::PlanFeatures* const> feats,
      PackedWorkspace* ws, std::vector<std::vector<double>>* rows) const;

  // Fully-parsed weights awaiting validation; nothing in the live model
  // changes until CommitStaged.
  struct StagedWeights {
    nn::TreeAttention attention;
    nn::Linear fc1, fc2, fc3;
    std::unique_ptr<StudentModel> student;  // optional trailing section
    std::string lineage;                    // optional trailing section
  };
  Status ValidateStaged(const StagedWeights& staged) const;
  void CommitStaged(StagedWeights&& staged);

  DaceConfig config_;
  Rng rng_;
  nn::TreeAttention attention_;
  nn::Linear fc1_, fc2_, fc3_;
  nn::Relu relu1_, relu2_;
  bool lora_attached_ = false;
  uint64_t weights_version_ = 1;
  ThreadPool* pool_ = nullptr;
  mutable F32Weights f32_;  // rebuilt by EnsureF32Weights on version change
  std::unique_ptr<StudentModel> student_;  // distilled tier; often null
  std::string lineage_;  // provenance tag; empty = untagged
};

// Plan-level facade implementing the CostEstimator interface: owns the
// featurizer (fitted on the training corpus) and the model, and handles
// label/prediction transforms. This is the class the examples and benches
// instantiate.
class DaceEstimator : public CostEstimator {
 public:
  explicit DaceEstimator(const DaceConfig& config = DaceConfig());

  std::string Name() const override { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Pre-trains on labelled plans (fits the featurizer first).
  void Train(const std::vector<plan::QueryPlan>& plans) override;

  // LoRA fine-tuning on a new workload (across-more / instance adaptation).
  // Reuses the already-fitted featurizer; requires Train first.
  TrainStats FineTune(const std::vector<plan::QueryPlan>& plans);

  // Seeded fine-tune for the background adaptation loop: the produced
  // weights are a pure function of (current weights, plans, seed) — bitwise
  // reproducible at any thread count, regardless of how much training
  // history advanced the model RNG beforehand.
  TrainStats FineTune(const std::vector<plan::QueryPlan>& plans,
                      uint64_t seed);

  // Distills the student serving tier from the current (frozen) teacher on
  // `plans` (typically the training or fine-tuning corpus) and calibrates
  // the escalation gate. Requires Train first. After this call the batched
  // serving path answers from the student whenever the gate allows (see
  // TierMode below).
  StudentTrainStats Distill(const std::vector<plan::QueryPlan>& plans);

  double PredictMs(const plan::QueryPlan& plan) const override;

  // Batched inference hot path: featurization + forward fan out across the
  // thread pool, and each worker reuses its scratch (featurization buffers
  // and forward matrices) so the per-plan forward allocates nothing after
  // warm-up. Results are bit-identical to per-plan PredictMs for any pool
  // size. Not safe to call concurrently on one estimator (the scratch is
  // shared); use separate estimators or external serialization.
  std::vector<double> PredictBatchMs(
      std::span<const plan::QueryPlan> plans) const override;

  // Scatter-gather variant of the batch hot path for the serving layer: the
  // plans of one coalesced micro-batch live on different callers' stacks, so
  // the batch is described by pointers instead of a contiguous array. Same
  // math, same cache, same determinism guarantees as the span-of-values
  // overload (which delegates here); results are bit-identical to per-plan
  // PredictMs. Pointers must stay valid for the duration of the call.
  //
  // Cache misses are priced through the packed multi-plan path by default
  // (see PackedMode): misses are sorted by node count, packed into tile sets
  // of up to 64 plans, and each pack runs ONE forward pass. At the default
  // f64 precision the packed results are bit-identical to the per-plan path,
  // so this is purely a throughput change; DACE_PRECISION=f32 additionally
  // switches the packs to the single-precision kernel table (documented
  // accuracy budget, no bit-identity).
  std::vector<double> PredictBatchMs(
      std::span<const plan::QueryPlan* const> plans) const;

  // Allocation-free twin of the pointer-span overload: results land in *out
  // (resized to plans.size()). This is the actual implementation — both
  // returning overloads delegate here — and the zero-allocation serving
  // contract is measured against it: with a warm estimator, a batch whose
  // plan shapes have been seen before performs no heap allocation end to
  // end (asserted by BM_PredictBatch's allocs/plan counter).
  void PredictBatchMsInto(std::span<const plan::QueryPlan* const> plans,
                          std::vector<double>* out) const;

  // Serving-tier dispatch for batched cache misses:
  //   kAuto (default)  — if a distilled student exists, it answers first and
  //                      the agreement gate (r̂ + q_bound ≤ τ) decides per
  //                      plan whether to keep the student's answer or
  //                      escalate to the packed teacher; without a student,
  //                      teacher-only.
  //   kTeacherOnly     — ignore the student (reference behaviour; benches
  //                      that measure the teacher pin this).
  //   kStudentOnly     — never escalate (gate forced open; tests/benches).
  // Process default is kAuto, overridable by DACE_TIER=auto|teacher|student
  // (resolved once); this setter overrides per estimator. PredictMs (the
  // single-plan path) is always teacher-only: tier routing is a property of
  // the batched serving path.
  enum class TierMode { kAuto = 0, kTeacherOnly = 1, kStudentOnly = 2 };
  static TierMode DefaultTierMode();
  void set_tier_mode(TierMode mode) { tier_mode_ = mode; }
  TierMode tier_mode() const { return tier_mode_; }

  // Batched all-sub-plan predictions (ms, DFS order per plan) through the
  // packed multi-plan path — the batched twin of PredictSubPlansMs. Teacher
  // only (sub-plan rows are a training/analysis surface, not the microsecond
  // serving tier) and uncached (the prediction cache stores root costs).
  // At f64 each row is bit-identical to PredictSubPlansMs.
  std::vector<std::vector<double>> PredictSubPlansBatchMs(
      std::span<const plan::QueryPlan* const> plans) const;

  // Packed-path dispatch policy for PredictBatchMs cache misses:
  //   kAuto (default) — packed when a batch has >= 2 misses, per-plan
  //                     otherwise (a single miss gains nothing from packing);
  //   kOn             — packed whenever there is at least one miss (tests);
  //   kOff            — always the per-plan reference path.
  // Process default is kAuto, overridable by DACE_PACKED=auto|on|off
  // (resolved once); this setter overrides per estimator.
  enum class PackedMode { kAuto = 0, kOn = 1, kOff = 2 };
  static PackedMode DefaultPackedMode();
  void set_packed_inference(PackedMode mode) { packed_mode_ = mode; }
  PackedMode packed_inference() const { return packed_mode_; }

  // Largest plan (node count) any live inference scratch buffer is currently
  // sized for — the observable the shrink-to-high-watermark policy governs
  // (see ScratchGovernor; asserted by packed_inference_test).
  size_t InferenceScratchPeakNodes() const;

  // Pool used for training featurization and PredictBatchMs; nullptr =
  // process default. Also forwarded to the model.
  void set_thread_pool(ThreadPool* pool);

  // Prediction-cache control: the serving paths (PredictMs/PredictBatchMs)
  // memoize final predictions keyed by (weights version, plan fingerprint).
  // Capacity 0 disables caching entirely; resizing resets entries and
  // counters. Default capacity is kDefaultPredictionCacheCapacity.
  void set_prediction_cache_capacity(size_t capacity) {
    prediction_cache_->Reset(capacity);
  }
  PredictionCache::Stats prediction_cache_stats() const {
    return prediction_cache_->GetStats();
  }

  static constexpr size_t kDefaultPredictionCacheCapacity = 4096;

  // Per-sub-plan predictions in ms, DFS order (index 0 = whole plan).
  std::vector<double> PredictSubPlansMs(const plan::QueryPlan& plan) const;

  // Pre-trained-encoder hook for WDM knowledge integration.
  std::vector<double> Encode(const plan::QueryPlan& plan) const;
  int EncodingDim() const { return model_.EncodingDim(); }

  size_t ParameterCount() const override { return model_.ParameterCount(); }
  size_t LoraParameterCount() const { return model_.LoraParameterCount(); }

  const DaceModel& model() const { return model_; }
  DaceModel& mutable_model() { return model_; }
  const featurize::Featurizer& featurizer() const { return featurizer_; }
  const TrainStats& last_train_stats() const { return last_train_stats_; }

  // Checkpoint provenance tag (forwarded to the model; see
  // DaceModel::lineage). Serialized as the optional kSectionLineage.
  const std::string& lineage() const { return model_.lineage(); }
  void set_lineage(std::string lineage) {
    mutable_model().set_lineage(std::move(lineage));
  }

  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

  // The complete format-1 checkpoint image (what SaveToFile writes) and its
  // transactional inverse. LoadFromString has exactly the LoadFromFile
  // contract: on any failure the live featurizer, weights, version and
  // cached predictions are untouched.
  std::string SerializeToString() const;
  Status LoadFromString(std::string_view blob);

  // Deep copy via an in-memory checkpoint round-trip: a fresh estimator with
  // this one's config, featurizer, weights (bit-identical predictions),
  // student, and lineage — and its OWN scratch, cache and RNG (reseeded from
  // config.seed), so the clone can fine-tune on a background thread while
  // the original keeps serving. Name and cache capacity carry over; thread
  // pool and tier/packed modes are left at the clone's defaults.
  std::unique_ptr<DaceEstimator> Clone() const;

 private:
  featurize::FeaturizerConfig FeatConfig() const;

  // Shrink-to-high-watermark policy for per-worker inference scratch. The
  // reusable buffers are sized for the largest plan a worker ever touched;
  // without a release valve one pathological deep plan pins megabytes per
  // worker for the process lifetime. The governor watches one scratch: when
  // the allocated watermark is >= kMinShrinkNodes AND at least kSlackFactor×
  // the recent peak use for kPatience consecutive batch calls, the scratch
  // is dropped back to empty (it re-warms to the CURRENT workload's sizes on
  // the next miss). Ordinary scratches (< kMinShrinkNodes) never shrink, so
  // the steady-state zero-allocation property is untouched.
  struct ScratchGovernor {
    static constexpr size_t kMinShrinkNodes = 256;
    static constexpr size_t kSlackFactor = 4;
    static constexpr int kPatience = 16;
    int oversized_streak = 0;
    bool Observe(size_t used_nodes, size_t allocated_nodes) {
      if (allocated_nodes >= kMinShrinkNodes &&
          allocated_nodes / kSlackFactor >= std::max<size_t>(used_nodes, 1)) {
        if (++oversized_streak >= kPatience) {
          oversized_streak = 0;
          return true;
        }
      } else {
        oversized_streak = 0;
      }
      return false;
    }
  };

  // One per pool worker, lazily sized; reused across PredictBatchMs calls so
  // the steady-state batch path performs no per-plan allocation.
  // `used_nodes` tracks the peak plan size since the governor last looked,
  // `alloc_nodes` the high-watermark the buffers are sized for.
  struct BatchScratch {
    featurize::PlanFeatures feats;
    featurize::FeatureScratch fscratch;
    DaceModel::Workspace ws;
    std::vector<double> preds;
    // Student-tier scratch: the pooled input row and the i8 activation
    // buffers (tiny, so never governed).
    float student_input[featurize::kStudentFeatureDim] = {};
    StudentModel::I8Scratch i8;
    size_t used_nodes = 0;
    size_t alloc_nodes = 0;
    ScratchGovernor governor;
  };

  // Per-worker scratch of the packed path: up to kPackMaxPlans featurized
  // plans plus the packed workspace. Same governor policy as BatchScratch.
  struct PackScratch {
    std::vector<featurize::PlanFeatures> feats;
    featurize::FeatureScratch fscratch;
    std::vector<const featurize::PlanFeatures*> feat_ptrs;
    DaceModel::PackedWorkspace ws;
    std::vector<double> roots;
    std::vector<std::vector<double>> rows;  // all-rows packed output
    size_t used_nodes = 0;
    size_t alloc_nodes = 0;
    ScratchGovernor governor;
  };

  // Per-call index/flag buffers of the batch path, reused across calls so a
  // warm PredictBatchMsInto allocates nothing. Not per-worker: only the
  // coordinating thread touches these.
  struct CallScratch {
    std::vector<const plan::QueryPlan*> ptrs;  // span-of-values adapter
    std::vector<uint64_t> fps;                 // per-plan fingerprints
    std::vector<uint8_t> hit;                  // cache-hit flags
    std::vector<size_t> misses;                // indices needing inference
    std::vector<uint8_t> served;               // student kept flags (per miss)
    std::vector<size_t> escalated;             // tier-escalated subset
    std::vector<size_t> order;                 // packed-path sort buffer
  };

  // Prices `misses` (indices into `plans`) through the packed path, writing
  // results/cache inserts exactly as the per-plan path would.
  void PredictPackedBatch(std::span<const plan::QueryPlan* const> plans,
                          const std::vector<size_t>& misses,
                          const std::vector<uint64_t>& fps, uint64_t version,
                          const featurize::FeaturizerConfig& fc,
                          std::vector<double>* out) const;

  // Runs the governor over every worker scratch after a batch call.
  void GovernScratch() const;

  std::vector<featurize::PlanFeatures> FeaturizeAll(
      const std::vector<plan::QueryPlan>& plans) const;

  // Student-first pass of the tiered miss flow: serves every gate-passing
  // miss, marks it in call_scratch_.served, and fills `escalated` with the
  // rest. Updates the predict.tier.* counters and serve.tier.* metrics.
  void ServeStudentTier(std::span<const plan::QueryPlan* const> plans,
                        const StudentModel& student, uint64_t version,
                        const featurize::FeaturizerConfig& fc, bool cache_on,
                        std::vector<double>* out) const;

  std::string name_ = "DACE";
  DaceConfig config_;
  featurize::Featurizer featurizer_;
  DaceModel model_;
  TrainStats last_train_stats_;
  ThreadPool* pool_ = nullptr;
  PackedMode packed_mode_ = DefaultPackedMode();
  TierMode tier_mode_ = DefaultTierMode();
  mutable std::vector<BatchScratch> batch_scratch_;
  mutable std::vector<PackScratch> pack_scratch_;
  mutable CallScratch call_scratch_;
  // unique_ptr keeps the estimator movable (the cache holds a mutex).
  mutable std::unique_ptr<PredictionCache> prediction_cache_ =
      std::make_unique<PredictionCache>(kDefaultPredictionCacheCapacity);
};

}  // namespace dace::core

#endif  // DACE_CORE_DACE_MODEL_H_
