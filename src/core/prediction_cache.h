#ifndef DACE_CORE_PREDICTION_CACHE_H_
#define DACE_CORE_PREDICTION_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.h"

namespace dace::core {

// Bounded LRU cache from plan fingerprint to predicted runtime, shared by
// the serving paths (PredictMs / PredictBatchMs). Keys are 64-bit content
// fingerprints of the featurized sub-plan tree (Featurizer::Fingerprint);
// values are the final, inverse-transformed milliseconds, so a hit skips
// featurization AND the forward pass.
//
// Staleness: every entry is implicitly versioned by the model's
// weights_version. Lookup/Insert take the caller's current version; when it
// differs from the version the cache was filled under, the whole cache is
// flushed first (weight updates invalidate every prediction at once, so
// per-entry version tags would just waste space).
//
// Thread safety: all operations take an internal mutex. PredictBatchMs
// workers hit the cache concurrently; the critical sections are a hash
// probe + list splice, orders of magnitude cheaper than the ~100µs forward
// pass a hit avoids.
//
// Observability: hit/miss/eviction counts live in obs::Counter instances —
// per-instance ones backing GetStats() (exact per-cache, resettable), plus
// process-wide "predict.cache.{hits,misses,evictions}" registry counters
// aggregated across every cache so run reports (--metrics-json) show cache
// behaviour without bespoke plumbing. The registry counters are monotone:
// Reset() clears only the per-instance view.
class PredictionCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t size = 0;
    size_t capacity = 0;
  };

  explicit PredictionCache(size_t capacity);

  PredictionCache(const PredictionCache&) = delete;
  PredictionCache& operator=(const PredictionCache&) = delete;

  // True (and *ms_out filled) on hit; promotes the entry to most-recent.
  // A miss is counted. Always misses when capacity is 0.
  bool Lookup(uint64_t version, uint64_t fingerprint, double* ms_out);

  // Inserts or refreshes fingerprint → ms, evicting the least-recently-used
  // entry if at capacity. No-op when capacity is 0.
  void Insert(uint64_t version, uint64_t fingerprint, double ms);

  // Drops all entries (counters survive; eviction count is unchanged —
  // flushes are tracked by the caller-visible version bump, not as LRU
  // pressure).
  void Clear();

  // Resets entries AND counters, and changes capacity.
  void Reset(size_t capacity);

  Stats GetStats() const;

 private:
  void FlushIfStaleLocked(uint64_t version);

  struct Entry {
    uint64_t fingerprint;
    double ms;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t version_ = 0;  // weights_version the current contents belong to
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  // Registry aggregates (shared across caches, never reset).
  obs::Counter* agg_hits_;
  obs::Counter* agg_misses_;
  obs::Counter* agg_evictions_;
};

}  // namespace dace::core

#endif  // DACE_CORE_PREDICTION_CACHE_H_
