#include "core/prediction_cache.h"

namespace dace::core {

PredictionCache::PredictionCache(size_t capacity)
    : capacity_(capacity),
      agg_hits_(obs::MetricsRegistry::Default()->GetCounter(
          "predict.cache.hits")),
      agg_misses_(obs::MetricsRegistry::Default()->GetCounter(
          "predict.cache.misses")),
      agg_evictions_(obs::MetricsRegistry::Default()->GetCounter(
          "predict.cache.evictions")) {}

void PredictionCache::FlushIfStaleLocked(uint64_t version) {
  if (version == version_) return;
  lru_.clear();
  index_.clear();
  version_ = version;
}

bool PredictionCache::Lookup(uint64_t version, uint64_t fingerprint,
                             double* ms_out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) {
    misses_.Add(1);
    agg_misses_->Add(1);
    return false;
  }
  FlushIfStaleLocked(version);
  auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    misses_.Add(1);
    agg_misses_->Add(1);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *ms_out = it->second->ms;
  hits_.Add(1);
  agg_hits_->Add(1);
  return true;
}

void PredictionCache::Insert(uint64_t version, uint64_t fingerprint,
                             double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  FlushIfStaleLocked(version);
  auto it = index_.find(fingerprint);
  if (it != index_.end()) {
    // Concurrent workers can race to fill the same fingerprint; the values
    // are identical (same weights, same plan), so just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->ms = ms;
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().fingerprint);
    lru_.pop_back();
    evictions_.Add(1);
    agg_evictions_->Add(1);
  }
  lru_.push_front(Entry{fingerprint, ms});
  index_[fingerprint] = lru_.begin();
}

void PredictionCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

void PredictionCache::Reset(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  capacity_ = capacity;
  hits_.Reset();
  misses_.Reset();
  evictions_.Reset();
}

PredictionCache::Stats PredictionCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_.Value();
  s.misses = misses_.Value();
  s.evictions = evictions_.Value();
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace dace::core
