#include "core/dace_model.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <numeric>

#include "util/logging.h"

namespace dace::core {

namespace {

using featurize::PlanFeatures;
using nn::Matrix;

// Huber loss and derivative (delta = 1) on the scaled-log-time residual:
// quadratic near zero for smooth convergence, linear in the tails so outlier
// plans do not dominate. |residual| in scaled-log space is monotone in the
// q-error, so this optimizes the evaluation metric directly.
double HuberLoss(double r) {
  const double a = std::fabs(r);
  return a <= 1.0 ? 0.5 * r * r : a - 0.5;
}

double HuberGrad(double r) { return std::clamp(r, -1.0, 1.0); }

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DaceModel::DaceModel(const DaceConfig& config)
    : config_(config), rng_(config.seed) {
  attention_.Init(static_cast<size_t>(config_.d_model),
                  static_cast<size_t>(config_.d_k),
                  static_cast<size_t>(config_.d_v), &rng_);
  fc1_.Init(static_cast<size_t>(config_.d_v),
            static_cast<size_t>(config_.hidden1), &rng_);
  fc2_.Init(static_cast<size_t>(config_.hidden1),
            static_cast<size_t>(config_.hidden2), &rng_);
  fc3_.Init(static_cast<size_t>(config_.hidden2), 1, &rng_);
}

void DaceModel::SetTrainMode(bool train_base, bool train_lora) {
  attention_.SetTrainBase(train_base);
  fc1_.SetTrainBase(train_base);
  fc2_.SetTrainBase(train_base);
  fc3_.SetTrainBase(train_base);
  fc1_.SetTrainLora(train_lora);
  fc2_.SetTrainLora(train_lora);
  fc3_.SetTrainLora(train_lora);
}

double DaceModel::ForwardOnPlan(const PlanFeatures& f, bool train) {
  const size_t n = f.node_features.rows();
  const Matrix& attn = attention_.Forward(f.node_features, f.attention_mask);
  const Matrix& h1 = relu1_.Forward(fc1_.Forward(attn));
  const Matrix& h2 = relu2_.Forward(fc2_.Forward(h1));
  const Matrix& pred = fc3_.Forward(h2);  // (n × 1)

  double weight_sum = 0.0;
  for (double w : f.loss_weights) weight_sum += w;
  if (weight_sum <= 0.0) weight_sum = 1.0;

  double loss = 0.0;
  Matrix dpred(n, 1);
  for (size_t i = 0; i < n; ++i) {
    const double residual = pred(i, 0) - f.labels[i];
    const double w = f.loss_weights[i] / weight_sum;
    loss += w * HuberLoss(residual);
    dpred(i, 0) = w * HuberGrad(residual);
  }

  if (train) {
    Matrix dh2, dh2_pre, dh1, dh1_pre, dattn, ds;
    fc3_.Backward(dpred, &dh2);
    relu2_.Backward(dh2, &dh2_pre);
    fc2_.Backward(dh2_pre, &dh1);
    relu1_.Backward(dh1, &dh1_pre);
    fc1_.Backward(dh1_pre, &dattn);
    attention_.Backward(dattn, &ds);
  }
  return loss;
}

TrainStats DaceModel::RunTraining(const std::vector<PlanFeatures>& data,
                                  bool lora_only) {
  DACE_CHECK(!data.empty());
  SetTrainMode(/*train_base=*/!lora_only, /*train_lora=*/lora_only);

  std::vector<nn::Parameter*> params;
  attention_.CollectParameters(&params);
  fc1_.CollectParameters(&params);
  fc2_.CollectParameters(&params);
  fc3_.CollectParameters(&params);
  DACE_CHECK(!params.empty());
  nn::Adam adam(lora_only ? config_.lora_learning_rate
                          : config_.learning_rate);
  adam.Register(params);

  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  const double start_ms = NowMs();
  const int epochs = lora_only ? config_.finetune_epochs : config_.epochs;
  double epoch_loss = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng_.Shuffle(&order);
    epoch_loss = 0.0;
    size_t in_batch = 0;
    for (size_t idx : order) {
      epoch_loss += ForwardOnPlan(data[idx], /*train=*/true);
      if (++in_batch >= static_cast<size_t>(config_.batch_size)) {
        adam.Step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) adam.Step();
    epoch_loss /= static_cast<double>(data.size());
  }

  TrainStats stats;
  stats.final_loss = epoch_loss;
  stats.epochs = epochs;
  stats.num_plans = data.size();
  stats.wall_ms = NowMs() - start_ms;
  return stats;
}

TrainStats DaceModel::Train(const std::vector<PlanFeatures>& data) {
  return RunTraining(data, /*lora_only=*/false);
}

TrainStats DaceModel::FineTuneLora(const std::vector<PlanFeatures>& data) {
  if (!lora_attached_) {
    fc1_.AttachLora(static_cast<size_t>(config_.lora_r1), &rng_);
    fc2_.AttachLora(static_cast<size_t>(config_.lora_r2), &rng_);
    fc3_.AttachLora(static_cast<size_t>(config_.lora_r3), &rng_);
    lora_attached_ = true;
  }
  return RunTraining(data, /*lora_only=*/true);
}

std::vector<double> DaceModel::PredictAll(const PlanFeatures& f) const {
  Matrix attn, z1, h1, z2, h2, pred;
  attention_.ForwardInference(f.node_features, f.attention_mask, &attn);
  fc1_.ForwardInference(attn, &z1);
  relu1_.ForwardInference(z1, &h1);
  fc2_.ForwardInference(h1, &z2);
  relu2_.ForwardInference(z2, &h2);
  fc3_.ForwardInference(h2, &pred);
  std::vector<double> out(pred.rows());
  for (size_t i = 0; i < pred.rows(); ++i) out[i] = pred(i, 0);
  return out;
}

double DaceModel::PredictRoot(const PlanFeatures& f) const {
  return PredictAll(f)[0];
}

std::vector<double> DaceModel::EncodeRoot(const PlanFeatures& f) const {
  Matrix attn, z1, h1, z2, h2;
  attention_.ForwardInference(f.node_features, f.attention_mask, &attn);
  fc1_.ForwardInference(attn, &z1);
  relu1_.ForwardInference(z1, &h1);
  fc2_.ForwardInference(h1, &z2);
  relu2_.ForwardInference(z2, &h2);
  std::vector<double> out(h2.cols());
  for (size_t j = 0; j < h2.cols(); ++j) out[j] = h2(0, j);
  return out;
}

size_t DaceModel::ParameterCount() const {
  return attention_.ParameterCount() + fc1_.ParameterCount() +
         fc2_.ParameterCount() + fc3_.ParameterCount();
}

size_t DaceModel::BaseParameterCount() const {
  return ParameterCount() - LoraParameterCount();
}

size_t DaceModel::LoraParameterCount() const {
  return fc1_.LoraParameterCount() + fc2_.LoraParameterCount() +
         fc3_.LoraParameterCount();
}

void DaceModel::Serialize(std::ostream* os) const {
  attention_.Serialize(os);
  fc1_.Serialize(os);
  fc2_.Serialize(os);
  fc3_.Serialize(os);
}

Status DaceModel::Deserialize(std::istream* is) {
  DACE_RETURN_IF_ERROR(attention_.Deserialize(is));
  DACE_RETURN_IF_ERROR(fc1_.Deserialize(is));
  DACE_RETURN_IF_ERROR(fc2_.Deserialize(is));
  DACE_RETURN_IF_ERROR(fc3_.Deserialize(is));
  lora_attached_ = fc1_.has_lora();
  return Status::OK();
}

// --------------------------------------------------------- DaceEstimator --

DaceEstimator::DaceEstimator(const DaceConfig& config)
    : config_(config), model_(config) {}

featurize::FeaturizerConfig DaceEstimator::FeatConfig() const {
  featurize::FeaturizerConfig fc;
  fc.alpha = config_.alpha;
  fc.tree_attention = config_.tree_attention;
  fc.use_actual_cardinality = config_.use_actual_cardinality;
  return fc;
}

void DaceEstimator::Train(const std::vector<plan::QueryPlan>& plans) {
  DACE_CHECK(!plans.empty());
  featurizer_.Fit(plans);
  std::vector<featurize::PlanFeatures> data;
  data.reserve(plans.size());
  const featurize::FeaturizerConfig fc = FeatConfig();
  for (const plan::QueryPlan& plan : plans) {
    data.push_back(featurizer_.Featurize(plan, fc));
  }
  last_train_stats_ = model_.Train(data);
}

TrainStats DaceEstimator::FineTune(const std::vector<plan::QueryPlan>& plans) {
  DACE_CHECK(featurizer_.fitted()) << "FineTune requires a pre-trained model";
  std::vector<featurize::PlanFeatures> data;
  data.reserve(plans.size());
  const featurize::FeaturizerConfig fc = FeatConfig();
  for (const plan::QueryPlan& plan : plans) {
    data.push_back(featurizer_.Featurize(plan, fc));
  }
  last_train_stats_ = model_.FineTuneLora(data);
  return last_train_stats_;
}

double DaceEstimator::PredictMs(const plan::QueryPlan& plan) const {
  const featurize::PlanFeatures f = featurizer_.Featurize(plan, FeatConfig());
  return featurizer_.InverseTransformTime(model_.PredictRoot(f));
}

std::vector<double> DaceEstimator::PredictSubPlansMs(
    const plan::QueryPlan& plan) const {
  const featurize::PlanFeatures f = featurizer_.Featurize(plan, FeatConfig());
  std::vector<double> scaled = model_.PredictAll(f);
  for (double& v : scaled) v = featurizer_.InverseTransformTime(v);
  return scaled;
}

std::vector<double> DaceEstimator::Encode(const plan::QueryPlan& plan) const {
  const featurize::PlanFeatures f = featurizer_.Featurize(plan, FeatConfig());
  return model_.EncodeRoot(f);
}

Status DaceEstimator::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open for write: " + path);
  featurizer_.Serialize(&out);
  model_.Serialize(&out);
  if (!out) return Status::DataLoss("write failed: " + path);
  return Status::OK();
}

Status DaceEstimator::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open for read: " + path);
  DACE_RETURN_IF_ERROR(featurizer_.Deserialize(&in));
  DACE_RETURN_IF_ERROR(model_.Deserialize(&in));
  return Status::OK();
}

}  // namespace dace::core
