#include "core/dace_model.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <tuple>
#include <utility>

#include "core/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace dace::core {

namespace {

using featurize::PlanFeatures;
using nn::Matrix;

// Training metrics, written at epoch granularity (never inside the batch
// loop). Handles resolve once per process.
obs::Counter* TrainEpochsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("train.epochs");
  return c;
}

obs::Counter* TrainMinibatchesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("train.minibatches");
  return c;
}

obs::Gauge* TrainEpochLossGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Default()->GetGauge("train.epoch_loss");
  return g;
}

obs::Gauge* TrainGradNormGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Default()->GetGauge("train.grad_norm");
  return g;
}

obs::Histogram* TrainEpochMsHistogram() {
  static obs::Histogram* h = [] {
    const std::vector<double> bounds = obs::ExponentialBuckets(0.1, 2.0, 24);
    return obs::MetricsRegistry::Default()->GetHistogram("train.epoch_ms",
                                                         bounds);
  }();
  return h;
}

// Inference latency, observed per prediction (cache hits included — the
// histogram tracks what a caller of PredictMs/PredictBatchMs experienced).
obs::Histogram* PredictLatencyUsHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Default()->GetHistogram(
      "predict.latency_us", obs::LatencyBucketsUs());
  return h;
}

obs::Counter* PredictionsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("predict.predictions");
  return c;
}

// Packed-path instrumentation. "Rows" are DFS rows (plan nodes): valid rows
// are the tightly packed activation rows a pack actually computes, padded
// rows the score-tile slack N·max_nodes − Σn[b] that shape dispersion costs.
// Occupancy = valid / (valid + padded), per pack.
obs::Counter* PackPacksCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("predict.pack.packs");
  return c;
}

obs::Counter* PackPlansCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("predict.pack.plans");
  return c;
}

obs::Counter* PackRowsValidCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("predict.pack.rows.valid");
  return c;
}

obs::Counter* PackRowsPaddedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("predict.pack.rows.padded");
  return c;
}

obs::Histogram* PackOccupancyHistogram() {
  static obs::Histogram* h = [] {
    const std::vector<double> bounds = {0.1, 0.2, 0.3, 0.4, 0.5,
                                        0.6, 0.7, 0.8, 0.9, 1.0};
    return obs::MetricsRegistry::Default()->GetHistogram(
        "predict.pack.occupancy", bounds);
  }();
  return h;
}

obs::Counter* ScratchShrinksCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("predict.scratch.shrinks");
  return c;
}

// Tiered-serving instrumentation (DESIGN.md §14). The counters reconcile
// exactly: every miss that enters the tiered gate bumps `requests` and then
// exactly one of `student` (gate kept the student's answer) or `escalated`
// (re-priced by the teacher), so student + escalated == requests always.
// Misses served while no student is eligible bump `teacher` instead.
obs::Counter* TierRequestsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("predict.tier.requests");
  return c;
}

obs::Counter* TierStudentCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("predict.tier.student");
  return c;
}

obs::Counter* TierEscalatedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("predict.tier.escalated");
  return c;
}

obs::Counter* TierTeacherCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("predict.tier.teacher");
  return c;
}

obs::Histogram* TierStudentLatencyHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Default()->GetHistogram(
      "serve.tier.student.latency_us", obs::LatencyBucketsUs());
  return h;
}

obs::Histogram* TierEscalatedLatencyHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Default()->GetHistogram(
      "serve.tier.escalated.latency_us", obs::LatencyBucketsUs());
  return h;
}

obs::Histogram* TierEscalatedFractionHistogram() {
  static obs::Histogram* h = [] {
    const std::vector<double> bounds = {0.0, 0.05, 0.1, 0.2, 0.3, 0.4,
                                        0.5,  0.6,  0.7, 0.8, 0.9, 1.0};
    return obs::MetricsRegistry::Default()->GetHistogram(
        "serve.tier.escalated_fraction", bounds);
  }();
  return h;
}

obs::Gauge* TierGateThresholdGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Default()->GetGauge("serve.tier.gate.threshold");
  return g;
}

obs::Gauge* TierGateQBoundGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Default()->GetGauge("serve.tier.gate.q_bound");
  return g;
}

uint64_t LatencyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// L2 norm of every accumulated parameter gradient — the per-epoch training
// health signal (measured on the last minibatch of the epoch, just before
// Adam consumes the gradients).
double GradientNorm(const std::vector<nn::Parameter*>& params) {
  double sum_sq = 0.0;
  for (const nn::Parameter* p : params) {
    const double* g = p->grad.data();
    for (size_t i = 0; i < p->grad.size(); ++i) sum_sq += g[i] * g[i];
  }
  return std::sqrt(sum_sq);
}

// Huber loss and derivative (delta = 1) on the scaled-log-time residual:
// quadratic near zero for smooth convergence, linear in the tails so outlier
// plans do not dominate. |residual| in scaled-log space is monotone in the
// q-error, so this optimizes the evaluation metric directly.
double HuberLoss(double r) {
  const double a = std::fabs(r);
  return a <= 1.0 ? 0.5 * r * r : a - 0.5;
}

double HuberGrad(double r) { return std::clamp(r, -1.0, 1.0); }

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Plans per gradient chunk. Chunks — not workers — own the accumulation
// buffers: chunk c always covers the same batch positions and its buffer is
// always reduced c-th, so training arithmetic is a pure function of the data
// and the batch schedule, never of the pool size or thread timing. Small
// enough that a default 64-plan batch yields 16 chunks for load balancing.
constexpr size_t kGradChunkPlans = 4;

// Plans per pack on the packed inference path. Large enough that the fused
// MLP matmuls run at GEMM-friendly row counts (a 64-plan pack of ~15-node
// plans is ~1000 rows), small enough that several packs fan out across the
// pool for one serving-sized batch.
constexpr size_t kPackMaxPlans = 64;

}  // namespace

DaceModel::DaceModel(const DaceConfig& config)
    : config_(config), rng_(config.seed) {
  attention_.Init(static_cast<size_t>(config_.d_model),
                  static_cast<size_t>(config_.d_k),
                  static_cast<size_t>(config_.d_v), &rng_);
  fc1_.Init(static_cast<size_t>(config_.d_v),
            static_cast<size_t>(config_.hidden1), &rng_);
  fc2_.Init(static_cast<size_t>(config_.hidden1),
            static_cast<size_t>(config_.hidden2), &rng_);
  fc3_.Init(static_cast<size_t>(config_.hidden2), 1, &rng_);
}

void DaceModel::SetTrainMode(bool train_base, bool train_lora) {
  attention_.SetTrainBase(train_base);
  fc1_.SetTrainBase(train_base);
  fc2_.SetTrainBase(train_base);
  fc3_.SetTrainBase(train_base);
  fc1_.SetTrainLora(train_lora);
  fc2_.SetTrainLora(train_lora);
  fc3_.SetTrainLora(train_lora);
}

double DaceModel::ForwardBackward(const PlanFeatures& f, Workspace* ws) const {
  const size_t n = f.node_features.rows();
  attention_.ForwardCached(f.node_features, f.attention_mask, &ws->attn_c,
                           &ws->attn);
  fc1_.ForwardReluCached(ws->attn, &ws->fc1_c, &ws->z1, &ws->h1);
  fc2_.ForwardReluCached(ws->h1, &ws->fc2_c, &ws->z2, &ws->h2);
  fc3_.ForwardCached(ws->h2, &ws->fc3_c, &ws->pred);  // (n × 1)

  double weight_sum = 0.0;
  for (double w : f.loss_weights) weight_sum += w;
  if (weight_sum <= 0.0) weight_sum = 1.0;

  double loss = 0.0;
  if (ws->dpred.rows() != n || ws->dpred.cols() != 1) {
    ws->dpred = Matrix(n, 1);
  }
  for (size_t i = 0; i < n; ++i) {
    const double residual = ws->pred(i, 0) - f.labels[i];
    const double w = f.loss_weights[i] / weight_sum;
    loss += w * HuberLoss(residual);
    ws->dpred(i, 0) = w * HuberGrad(residual);
  }

  fc3_.BackwardCached(ws->fc3_c, ws->dpred, &ws->fc3_g, &ws->dh2);
  relu2_.BackwardCached(ws->z2, ws->dh2, &ws->dh2_pre);
  fc2_.BackwardCached(ws->fc2_c, ws->dh2_pre, &ws->fc2_g, &ws->dh1);
  relu1_.BackwardCached(ws->z1, ws->dh1, &ws->dh1_pre);
  fc1_.BackwardCached(ws->fc1_c, ws->dh1_pre, &ws->fc1_g, &ws->dattn);
  attention_.BackwardCached(ws->attn_c, ws->dattn, &ws->attn_g, &ws->ds);
  return loss;
}

void DaceModel::InitWorkspaceGradients(Workspace* ws) const {
  attention_.InitGradients(&ws->attn_g);
  fc1_.InitGradients(&ws->fc1_g);
  fc2_.InitGradients(&ws->fc2_g);
  fc3_.InitGradients(&ws->fc3_g);
}

TrainStats DaceModel::RunTraining(const std::vector<PlanFeatures>& data,
                                  bool lora_only) {
  DACE_CHECK(!data.empty());
  SetTrainMode(/*train_base=*/!lora_only, /*train_lora=*/lora_only);

  std::vector<nn::Parameter*> params;
  attention_.CollectParameters(&params);
  fc1_.CollectParameters(&params);
  fc2_.CollectParameters(&params);
  fc3_.CollectParameters(&params);
  DACE_CHECK(!params.empty());
  nn::Adam adam(lora_only ? config_.lora_learning_rate
                          : config_.learning_rate);
  adam.Register(params);

  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  ThreadPool* pool = thread_pool();
  const size_t batch_size = static_cast<size_t>(config_.batch_size);
  const size_t max_chunks =
      (std::min(batch_size, data.size()) + kGradChunkPlans - 1) /
      kGradChunkPlans;
  std::vector<Workspace> chunks(max_chunks);
  for (Workspace& ws : chunks) InitWorkspaceGradients(&ws);

  const double start_ms = NowMs();
  const int epochs = lora_only ? config_.finetune_epochs : config_.epochs;
  double epoch_loss = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    DACE_TRACE_SPAN("train.epoch");
    const double epoch_start_ms = NowMs();
    double grad_norm = 0.0;
    size_t minibatches = 0;
    rng_.Shuffle(&order);
    epoch_loss = 0.0;
    for (size_t base = 0; base < order.size(); base += batch_size) {
      const size_t batch_end = std::min(base + batch_size, order.size());
      const size_t num_chunks =
          (batch_end - base + kGradChunkPlans - 1) / kGradChunkPlans;
      // Chunk workers share the frozen weights (all cached passes are const)
      // and write only their own chunk's workspace.
      pool->ParallelFor(0, num_chunks, [&](size_t c) {
        Workspace& ws = chunks[c];
        const size_t lo = base + c * kGradChunkPlans;
        const size_t hi = std::min(lo + kGradChunkPlans, batch_end);
        for (size_t i = lo; i < hi; ++i) {
          ws.loss += ForwardBackward(data[order[i]], &ws);
        }
      });
      // Deterministic reduction: chunk buffers fold into the shared
      // gradients in chunk order, whatever thread produced them.
      for (size_t c = 0; c < num_chunks; ++c) {
        epoch_loss += chunks[c].loss;
        chunks[c].loss = 0.0;
        attention_.AccumulateGradients(&chunks[c].attn_g);
        fc1_.AccumulateGradients(&chunks[c].fc1_g);
        fc2_.AccumulateGradients(&chunks[c].fc2_g);
        fc3_.AccumulateGradients(&chunks[c].fc3_g);
      }
      ++minibatches;
      if (batch_end == order.size()) grad_norm = GradientNorm(params);
      adam.Step();
    }
    epoch_loss /= static_cast<double>(data.size());

    const double epoch_ms = NowMs() - epoch_start_ms;
    TrainEpochsCounter()->Add(1);
    TrainMinibatchesCounter()->Add(minibatches);
    TrainEpochLossGauge()->Set(epoch_loss);
    TrainGradNormGauge()->Set(grad_norm);
    TrainEpochMsHistogram()->Observe(epoch_ms);
    DACE_LOG(INFO) << (lora_only ? "finetune" : "train") << " epoch "
                   << epoch + 1 << "/" << epochs << " loss=" << epoch_loss
                   << " grad_norm=" << grad_norm << " batches=" << minibatches
                   << " wall_ms=" << epoch_ms;
  }

  TrainStats stats;
  stats.final_loss = epoch_loss;
  stats.epochs = epochs;
  stats.num_plans = data.size();
  stats.wall_ms = NowMs() - start_ms;
  ++weights_version_;  // every cached prediction is now stale
  // The student was distilled from the weights that just changed; serving a
  // stale student would silently answer for a teacher that no longer exists.
  student_.reset();
  return stats;
}

TrainStats DaceModel::Train(const std::vector<PlanFeatures>& data) {
  return RunTraining(data, /*lora_only=*/false);
}

TrainStats DaceModel::FineTuneLora(const std::vector<PlanFeatures>& data) {
  if (!lora_attached_) {
    fc1_.AttachLora(static_cast<size_t>(config_.lora_r1), &rng_);
    fc2_.AttachLora(static_cast<size_t>(config_.lora_r2), &rng_);
    fc3_.AttachLora(static_cast<size_t>(config_.lora_r3), &rng_);
    lora_attached_ = true;
  }
  return RunTraining(data, /*lora_only=*/true);
}

TrainStats DaceModel::FineTuneLora(const std::vector<PlanFeatures>& data,
                                   uint64_t seed) {
  // Reseeding before adapter init / shuffling erases whatever RNG history the
  // model accumulated (every prior Train/FineTune advanced rng_), so two
  // models with identical weights produce bitwise-identical fine-tunes from
  // the same (data, seed) — the reproducibility contract the background
  // adaptation loop records in its lineage tag.
  rng_.Reseed(seed);
  return FineTuneLora(data);
}

StudentTrainStats DaceModel::DistillStudent(
    const std::vector<PlanFeatures>& data, const Matrix& inputs) {
  DACE_CHECK(!data.empty());
  DACE_CHECK_EQ(inputs.rows(), data.size())
      << "one student input row per teacher plan";
  ThreadPool* pool = thread_pool();
  const int workers = pool->num_threads();

  // Teacher targets: the frozen teacher's root prediction per plan. Slot
  // workspaces are reuse-only — targets[i] depends on plan i alone, so the
  // result is pool-size independent.
  std::vector<double> targets(data.size());
  std::vector<Workspace> wss(static_cast<size_t>(workers));
  std::vector<std::vector<double>> preds(static_cast<size_t>(workers));
  pool->ParallelForWorker(0, data.size(), [&](int slot, size_t i) {
    const size_t w = static_cast<size_t>(slot);
    PredictAllInto(data[i], &wss[w], &preds[w]);
    targets[i] = preds[w][0];
  });

  auto student = std::make_unique<StudentModel>(
      config_.student_hidden1, config_.student_hidden2,
      HashMix(config_.seed + 0x5d111ed));
  StudentModel::TrainConfig tc;
  tc.learning_rate = config_.distill_learning_rate;
  tc.epochs = config_.distill_epochs;
  tc.batch_size = config_.distill_batch_size;
  const StudentTrainStats stats = student->Train(inputs, targets, tc, pool);

  // Gate calibration. q_bound is the empirical max |ŷ_i8 − ŷ_f64| over the
  // distillation set — the quantization slack the gate must assume whenever
  // the i8 image answers. τ is the escalation_quantile quantile of
  // (r̂ + q_bound): plans whose predicted residual clears it re-price on the
  // teacher.
  const size_t n = data.size();
  std::vector<double> rhat(n);
  std::vector<StudentModel::I8Scratch> i8s(static_cast<size_t>(workers));
  std::vector<double> qmax(static_cast<size_t>(workers), 0.0);
  pool->ParallelForWorker(0, n, [&](int slot, size_t i) {
    const size_t w = static_cast<size_t>(slot);
    float in[featurize::kStudentFeatureDim];
    const double* src = inputs.RowPtr(i);
    for (int j = 0; j < featurize::kStudentFeatureDim; ++j) {
      in[j] = static_cast<float>(src[j]);
    }
    double y64 = 0.0, r64 = 0.0;
    student->PredictF64(in, &y64, &r64);
    float yi8 = 0.0f, ri8 = 0.0f;
    student->PredictI8(in, &i8s[w], &yi8, &ri8);
    qmax[w] = std::max(qmax[w], std::abs(static_cast<double>(yi8) - y64));
    rhat[i] = r64;
  });
  double q_bound = 0.0;
  for (double q : qmax) q_bound = std::max(q_bound, q);
  std::sort(rhat.begin(), rhat.end());
  const size_t k = std::min(
      n - 1, static_cast<size_t>(config_.escalation_quantile *
                                 static_cast<double>(n)));
  student->set_gate(/*threshold=*/rhat[k] + q_bound, q_bound);

  student_ = std::move(student);
  // The servable function set changed (student answers now mix into the
  // batched path), so predictions cached before distillation must flush.
  ++weights_version_;
  DACE_LOG(INFO) << "distill: rows=" << stats.num_rows
                 << " loss=" << stats.final_loss
                 << " tau=" << student_->gate_threshold()
                 << " q_bound=" << student_->gate_q_bound()
                 << " wall_ms=" << stats.wall_ms;
  return stats;
}

void DaceModel::PredictAllInto(const PlanFeatures& f, Workspace* ws,
                               std::vector<double>* out) const {
  attention_.ForwardCached(f.node_features, f.attention_mask, &ws->attn_c,
                           &ws->attn);
  fc1_.ForwardReluCached(ws->attn, &ws->fc1_c, &ws->z1, &ws->h1);
  fc2_.ForwardReluCached(ws->h1, &ws->fc2_c, &ws->z2, &ws->h2);
  fc3_.ForwardCached(ws->h2, &ws->fc3_c, &ws->pred);
  out->resize(ws->pred.rows());
  for (size_t i = 0; i < ws->pred.rows(); ++i) (*out)[i] = ws->pred(i, 0);
}

std::vector<double> DaceModel::PredictAll(const PlanFeatures& f) const {
  Workspace ws;
  std::vector<double> out;
  PredictAllInto(f, &ws, &out);
  return out;
}

double DaceModel::PredictRoot(const PlanFeatures& f) const {
  return PredictAll(f)[0];
}

void DaceModel::PredictPackedInto(
    std::span<const PlanFeatures* const> feats, PackedWorkspace* ws,
    std::vector<double>* roots) const {
  roots->resize(feats.size());
  if (feats.empty()) return;
  ws->layout.Clear();
  ws->masks.clear();
  for (const PlanFeatures* f : feats) {
    ws->layout.Add(f->node_features.rows());
    ws->masks.push_back(&f->attention_mask);
  }
  // kI8 selects the student-tier kernels; the teacher has no int8 image, so
  // it serves its fastest path (the folded f32 weights) under kI8 too.
  if (nn::kernel::ActivePrecision() != nn::kernel::Precision::kF64) {
    ForwardPackedF32(feats, ws, roots);
  } else {
    ForwardPackedF64(feats, ws, roots);
  }
}

void DaceModel::ForwardPackedF64(std::span<const PlanFeatures* const> feats,
                                 PackedWorkspace* ws,
                                 std::vector<double>* roots) const {
  const nn::PackLayout& layout = ws->layout;
  const size_t rows = layout.total_rows;
  const size_t dm = static_cast<size_t>(config_.d_model);
  if (ws->s.rows() != rows || ws->s.cols() != dm) ws->s = Matrix(rows, dm);
  for (size_t b = 0; b < feats.size(); ++b) {
    const Matrix& nf = feats[b]->node_features;
    std::memcpy(ws->s.RowPtr(layout.offset[b]), nf.data(),
                nf.size() * sizeof(double));
  }
  attention_.ForwardPackedCached(ws->s, layout, ws->masks.data(), &ws->attn_c,
                                 &ws->attn);
  fc1_.ForwardPackedCached(ws->attn, &ws->fc1_c, &ws->z1, &ws->h1);
  fc2_.ForwardPackedCached(ws->h1, &ws->fc2_c, &ws->z2, &ws->h2);
  fc3_.ForwardPackedCached(ws->h2, &ws->fc3_c, &ws->pred, nullptr);
  for (size_t b = 0; b < feats.size(); ++b) {
    (*roots)[b] = ws->pred(layout.offset[b], 0);
  }
}

void DaceModel::EnsureF32Weights() const {
  if (f32_.version == weights_version_) return;
  const auto narrow = [](const Matrix& m, F32Weights::FloatBuffer* out) {
    out->resize(m.size());
    const double* src = m.data();
    for (size_t i = 0; i < m.size(); ++i) {
      (*out)[i] = static_cast<float>(src[i]);
    }
  };
  // Fold W_eff = W + scale·A·B in double (bit-identical to what the f64
  // forward applies factored), then narrow once — the adapter never exists
  // as a separate f32 factor, so the packed f32 MLP is plain dense GEMMs.
  const auto fold = [&narrow](const nn::Linear& fc, F32Weights::FloatBuffer* w,
                              F32Weights::FloatBuffer* b) {
    if (fc.has_lora()) {
      Matrix ab;
      nn::MatMul(fc.lora_a(), fc.lora_b(), &ab);
      Matrix eff = fc.weight();
      eff.AddScaled(ab, fc.lora_scale());
      narrow(eff, w);
    } else {
      narrow(fc.weight(), w);
    }
    narrow(fc.bias(), b);
  };
  narrow(attention_.wq(), &f32_.wq);
  narrow(attention_.wk(), &f32_.wk);
  narrow(attention_.wv(), &f32_.wv);
  fold(fc1_, &f32_.w1, &f32_.b1);
  fold(fc2_, &f32_.w2, &f32_.b2);
  fold(fc3_, &f32_.w3, &f32_.b3);
  f32_.inv_sqrt_dk = static_cast<float>(attention_.inv_sqrt_dk());
  f32_.version = weights_version_;
}

void DaceModel::ForwardPackedF32(std::span<const PlanFeatures* const> feats,
                                 PackedWorkspace* ws,
                                 std::vector<double>* roots) const {
  DACE_CHECK_EQ(f32_.version, weights_version_)
      << "f32 packed inference with stale folded weights: EnsureF32Weights "
         "must run after every weight mutation";
  const nn::kernel::TableF32& t = nn::kernel::ActiveF32();
  const nn::PackLayout& layout = ws->layout;
  const size_t count = feats.size();
  const size_t rows = layout.total_rows;
  const size_t maxn = layout.max_nodes;
  const size_t dm = static_cast<size_t>(config_.d_model);
  const size_t dk = static_cast<size_t>(config_.d_k);
  const size_t dv = static_cast<size_t>(config_.d_v);
  const size_t n1 = static_cast<size_t>(config_.hidden1);
  const size_t n2 = static_cast<size_t>(config_.hidden2);

  // Only the ROOT prediction of each block leaves this function, and the MLP
  // is row-wise, so everything downstream of K/V runs on one row per plan:
  // Q, scores, softmax and context for the root row only, then a
  // (count × ·) MLP instead of a (total_rows × ·) one. K and V are the only
  // full-pack tensors — every packed row is a softmax candidate for its
  // block's root. (The f64 path prices all rows to stay bit-identical to
  // PredictAllInto; this path's contract is the DESIGN §13 error budget, not
  // bit-identity, so it is free to skip rows nobody reads.)

  // Packed feature tile, narrowed from the featurizer's doubles (linear in
  // the input; a rounding error far below the kernel error budget).
  ws->s32.resize(rows * dm);
  for (size_t b = 0; b < count; ++b) {
    const size_t off = layout.offset[b];
    const size_t nb = layout.n[b];
    const double* src = feats[b]->node_features.data();
    float* dst = ws->s32.data() + off * dm;
    for (size_t i = 0; i < nb * dm; ++i) dst[i] = static_cast<float>(src[i]);
  }
  // Root-row additive mask, one row per block, column-padded to maxn.
  ws->mask32.resize(count * maxn);
  for (size_t b = 0; b < count; ++b) {
    const size_t nb = layout.n[b];
    const double* mrow = feats[b]->attention_mask.RowPtr(0);
    float* mdst = ws->mask32.data() + b * maxn;
    for (size_t j = 0; j < nb; ++j) mdst[j] = static_cast<float>(mrow[j]);
  }

  // K/V over the whole pack, Q for the root rows only. Feature rows are
  // sparse (one-hot node type + two scalars), so the zero-skipping panel
  // kernel beats a dense GEMM on all three projections.
  ws->k32.assign(rows * dk, 0.0f);
  ws->v32.assign(rows * dv, 0.0f);
  ws->q32.assign(count * dk, 0.0f);
  t.mm_panel(ws->s32.data(), dm, f32_.wk.data(), dk, ws->k32.data(), dk, rows,
             0, dm, 0, dk);
  t.mm_panel(ws->s32.data(), dm, f32_.wv.data(), dv, ws->v32.data(), dv, rows,
             0, dm, 0, dv);
  for (size_t b = 0; b < count; ++b) {
    t.mm_panel(ws->s32.data() + layout.offset[b] * dm, dm, f32_.wq.data(), dk,
               ws->q32.data() + b * dk, dk, 1, 0, dm, 0, dk);
  }

  // Root-row scores + fused masked softmax, one row per block. kMaskNegInf
  // (-1e30) is exactly representable in float and the additive mask values
  // are 0/-1e30, so the f32 masking semantics match the f64 path exactly.
  const float neg_inf = static_cast<float>(nn::kMaskNegInf);
  ws->scores32.resize(count * maxn);
  ws->probs32.resize(count * maxn);
  for (size_t b = 0; b < count; ++b) {
    const size_t off = layout.offset[b];
    const size_t nb = layout.n[b];
    float* srow = ws->scores32.data() + b * maxn;
    const float* qrow = ws->q32.data() + b * dk;
    for (size_t j = 0; j < nb; ++j) {
      srow[j] = t.dot(dk, qrow, ws->k32.data() + (off + j) * dk);
    }
    t.scale(nb, f32_.inv_sqrt_dk, srow);
    const float* mrow = ws->mask32.data() + b * maxn;
    float* prow = ws->probs32.data() + b * maxn;
    const float max_val = t.masked_max(nb, srow, mrow, neg_inf);
    DACE_CHECK_GT(max_val, neg_inf)
        << "packed softmax root row of block " << b << " fully masked";
    const float denom = t.masked_exp(nb, srow, mrow, max_val, neg_inf, prow);
    t.div(nb, denom, prow);
  }

  // Root context rows: probs_root · V_block. Masked probabilities are
  // exactly 0.0f, so the zero-skip kernel prices only the root's unmasked
  // ancestor set.
  ws->attn32.assign(count * dv, 0.0f);
  for (size_t b = 0; b < count; ++b) {
    t.mm_panel(ws->probs32.data() + b * maxn, maxn,
               ws->v32.data() + layout.offset[b] * dv, dv,
               ws->attn32.data() + b * dv, dv, 1, 0, layout.n[b], 0, dv);
  }

  // Root MLP across the pack: bias-seeded dense GEMM + in-place ReLU
  // epilogue, count rows tall. This is where the register-blocked f32 GEMM
  // earns its keep — every plan in the pack shares the instruction stream.
  ws->z132.resize(count * n1);
  for (size_t i = 0; i < count; ++i) {
    std::memcpy(ws->z132.data() + i * n1, f32_.b1.data(), n1 * sizeof(float));
  }
  t.gemm(ws->attn32.data(), dv, f32_.w1.data(), n1, ws->z132.data(), n1,
         count, dv, n1);
  t.relu(count * n1, ws->z132.data(), ws->z132.data());
  ws->z232.resize(count * n2);
  for (size_t i = 0; i < count; ++i) {
    std::memcpy(ws->z232.data() + i * n2, f32_.b2.data(), n2 * sizeof(float));
  }
  t.gemm(ws->z132.data(), n1, f32_.w2.data(), n2, ws->z232.data(), n2, count,
         n1, n2);
  t.relu(count * n2, ws->z232.data(), ws->z232.data());

  // Head: one dot per plan.
  const float b3 = f32_.b3[0];
  for (size_t b = 0; b < count; ++b) {
    const float* hrow = ws->z232.data() + b * n2;
    (*roots)[b] = static_cast<double>(b3 + t.dot(n2, hrow, f32_.w3.data()));
  }
}

void DaceModel::PredictPackedAllInto(
    std::span<const PlanFeatures* const> feats, PackedWorkspace* ws,
    std::vector<std::vector<double>>* rows) const {
  rows->resize(feats.size());
  if (feats.empty()) return;
  ws->layout.Clear();
  ws->masks.clear();
  for (const PlanFeatures* f : feats) {
    ws->layout.Add(f->node_features.rows());
    ws->masks.push_back(&f->attention_mask);
  }
  if (nn::kernel::ActivePrecision() != nn::kernel::Precision::kF64) {
    ForwardPackedAllF32(feats, ws, rows);
    return;
  }
  // The packed f64 body already prices EVERY row (that is what keeps it
  // bit-identical to PredictAllInto) — all-rows extraction is free.
  ws->roots_scratch.resize(feats.size());
  ForwardPackedF64(feats, ws, &ws->roots_scratch);
  for (size_t b = 0; b < feats.size(); ++b) {
    const size_t off = ws->layout.offset[b];
    const size_t nb = ws->layout.n[b];
    std::vector<double>& r = (*rows)[b];
    r.resize(nb);
    for (size_t j = 0; j < nb; ++j) r[j] = ws->pred(off + j, 0);
  }
}

void DaceModel::ForwardPackedAllF32(
    std::span<const PlanFeatures* const> feats, PackedWorkspace* ws,
    std::vector<std::vector<double>>* rows) const {
  DACE_CHECK_EQ(f32_.version, weights_version_)
      << "f32 packed inference with stale folded weights: EnsureF32Weights "
         "must run after every weight mutation";
  const nn::kernel::TableF32& t = nn::kernel::ActiveF32();
  const nn::PackLayout& layout = ws->layout;
  const size_t count = feats.size();
  const size_t nrows = layout.total_rows;
  const size_t maxn = layout.max_nodes;
  const size_t dm = static_cast<size_t>(config_.d_model);
  const size_t dk = static_cast<size_t>(config_.d_k);
  const size_t dv = static_cast<size_t>(config_.d_v);
  const size_t n1 = static_cast<size_t>(config_.hidden1);
  const size_t n2 = static_cast<size_t>(config_.hidden2);

  // All-rows twin of ForwardPackedF32: every packed row is both a softmax
  // candidate AND a softmax query, so Q/scores/softmax/context/MLP all run
  // at total_rows height instead of one row per plan.
  ws->s32.resize(nrows * dm);
  for (size_t b = 0; b < count; ++b) {
    const size_t off = layout.offset[b];
    const size_t nb = layout.n[b];
    const double* src = feats[b]->node_features.data();
    float* dst = ws->s32.data() + off * dm;
    for (size_t i = 0; i < nb * dm; ++i) dst[i] = static_cast<float>(src[i]);
  }
  // Full additive masks, each block's rows column-padded to maxn.
  ws->mask32.resize(nrows * maxn);
  for (size_t b = 0; b < count; ++b) {
    const size_t off = layout.offset[b];
    const size_t nb = layout.n[b];
    for (size_t i = 0; i < nb; ++i) {
      const double* mrow = feats[b]->attention_mask.RowPtr(i);
      float* mdst = ws->mask32.data() + (off + i) * maxn;
      for (size_t j = 0; j < nb; ++j) mdst[j] = static_cast<float>(mrow[j]);
    }
  }

  ws->q32.assign(nrows * dk, 0.0f);
  ws->k32.assign(nrows * dk, 0.0f);
  ws->v32.assign(nrows * dv, 0.0f);
  t.mm_panel(ws->s32.data(), dm, f32_.wq.data(), dk, ws->q32.data(), dk,
             nrows, 0, dm, 0, dk);
  t.mm_panel(ws->s32.data(), dm, f32_.wk.data(), dk, ws->k32.data(), dk,
             nrows, 0, dm, 0, dk);
  t.mm_panel(ws->s32.data(), dm, f32_.wv.data(), dv, ws->v32.data(), dv,
             nrows, 0, dm, 0, dv);

  const float neg_inf = static_cast<float>(nn::kMaskNegInf);
  ws->scores32.resize(nrows * maxn);
  ws->probs32.resize(nrows * maxn);
  for (size_t b = 0; b < count; ++b) {
    const size_t off = layout.offset[b];
    const size_t nb = layout.n[b];
    for (size_t i = 0; i < nb; ++i) {
      float* srow = ws->scores32.data() + (off + i) * maxn;
      const float* qrow = ws->q32.data() + (off + i) * dk;
      for (size_t j = 0; j < nb; ++j) {
        srow[j] = t.dot(dk, qrow, ws->k32.data() + (off + j) * dk);
      }
      t.scale(nb, f32_.inv_sqrt_dk, srow);
      const float* mrow = ws->mask32.data() + (off + i) * maxn;
      float* prow = ws->probs32.data() + (off + i) * maxn;
      const float max_val = t.masked_max(nb, srow, mrow, neg_inf);
      DACE_CHECK_GT(max_val, neg_inf)
          << "packed softmax row " << i << " of block " << b
          << " fully masked";
      const float denom =
          t.masked_exp(nb, srow, mrow, max_val, neg_inf, prow);
      t.div(nb, denom, prow);
    }
  }

  // Per-block context: probs_block (nb × maxn-strided) · V_block (nb × dv).
  ws->attn32.assign(nrows * dv, 0.0f);
  for (size_t b = 0; b < count; ++b) {
    const size_t off = layout.offset[b];
    const size_t nb = layout.n[b];
    t.mm_panel(ws->probs32.data() + off * maxn, maxn,
               ws->v32.data() + off * dv, dv, ws->attn32.data() + off * dv,
               dv, nb, 0, nb, 0, dv);
  }

  // MLP over every packed row.
  ws->z132.resize(nrows * n1);
  for (size_t i = 0; i < nrows; ++i) {
    std::memcpy(ws->z132.data() + i * n1, f32_.b1.data(), n1 * sizeof(float));
  }
  t.gemm(ws->attn32.data(), dv, f32_.w1.data(), n1, ws->z132.data(), n1,
         nrows, dv, n1);
  t.relu(nrows * n1, ws->z132.data(), ws->z132.data());
  ws->z232.resize(nrows * n2);
  for (size_t i = 0; i < nrows; ++i) {
    std::memcpy(ws->z232.data() + i * n2, f32_.b2.data(), n2 * sizeof(float));
  }
  t.gemm(ws->z132.data(), n1, f32_.w2.data(), n2, ws->z232.data(), n2, nrows,
         n1, n2);
  t.relu(nrows * n2, ws->z232.data(), ws->z232.data());

  const float b3 = f32_.b3[0];
  for (size_t b = 0; b < count; ++b) {
    const size_t off = layout.offset[b];
    const size_t nb = layout.n[b];
    std::vector<double>& r = (*rows)[b];
    r.resize(nb);
    for (size_t j = 0; j < nb; ++j) {
      const float* hrow = ws->z232.data() + (off + j) * n2;
      r[j] = static_cast<double>(b3 + t.dot(n2, hrow, f32_.w3.data()));
    }
  }
}

std::vector<double> DaceModel::EncodeRoot(const PlanFeatures& f) const {
  Matrix attn, z1, h1, z2, h2;
  attention_.ForwardInference(f.node_features, f.attention_mask, &attn);
  fc1_.ForwardInference(attn, &z1);
  relu1_.ForwardInference(z1, &h1);
  fc2_.ForwardInference(h1, &z2);
  relu2_.ForwardInference(z2, &h2);
  std::vector<double> out(h2.cols());
  for (size_t j = 0; j < h2.cols(); ++j) out[j] = h2(0, j);
  return out;
}

size_t DaceModel::ParameterCount() const {
  return attention_.ParameterCount() + fc1_.ParameterCount() +
         fc2_.ParameterCount() + fc3_.ParameterCount();
}

size_t DaceModel::BaseParameterCount() const {
  return ParameterCount() - LoraParameterCount();
}

size_t DaceModel::LoraParameterCount() const {
  return fc1_.LoraParameterCount() + fc2_.LoraParameterCount() +
         fc3_.LoraParameterCount();
}

void DaceModel::Serialize(ByteWriter* w) const {
  attention_.Serialize(w);
  fc1_.Serialize(w);
  fc2_.Serialize(w);
  fc3_.Serialize(w);
}

Status DaceModel::Deserialize(ByteReader* r) {
  StagedWeights staged;
  DACE_RETURN_IF_ERROR(staged.attention.Deserialize(r));
  DACE_RETURN_IF_ERROR(staged.fc1.Deserialize(r));
  DACE_RETURN_IF_ERROR(staged.fc2.Deserialize(r));
  DACE_RETURN_IF_ERROR(staged.fc3.Deserialize(r));
  if (r->remaining() != 0) {
    return Status::DataLoss("trailing garbage after the model weights");
  }
  DACE_RETURN_IF_ERROR(ValidateStaged(staged));
  CommitStaged(std::move(staged));
  return Status::OK();
}

void DaceModel::AppendSections(CheckpointWriter* w) const {
  w->BeginSection(kSectionAttention);
  attention_.Serialize(w->bytes());
  w->EndSection();
  const std::pair<uint32_t, const nn::Linear*> linears[] = {
      {kSectionFc1, &fc1_}, {kSectionFc2, &fc2_}, {kSectionFc3, &fc3_}};
  for (const auto& [tag, layer] : linears) {
    w->BeginSection(tag);
    layer->Serialize(w->bytes());
    w->EndSection();
  }
  // The student is an optional trailing section: pre-distillation saves emit
  // nothing, so their byte layout (and old readers of it) is unchanged.
  if (student_ != nullptr) {
    w->BeginSection(kSectionStudent);
    student_->Serialize(w->bytes());
    w->EndSection();
  }
  // Lineage is likewise optional and trailing (after the student, when both
  // are present): untagged models write nothing, so their artifacts are
  // byte-identical to pre-lineage builds.
  if (!lineage_.empty()) {
    w->BeginSection(kSectionLineage);
    w->bytes()->WriteBytes(lineage_.data(), lineage_.size());
    w->EndSection();
  }
}

Status DaceModel::LoadSections(CheckpointReader* r) {
  StagedWeights staged;
  const auto load = [r](uint32_t tag, auto* layer,
                        const char* what) -> Status {
    ByteReader payload;
    DACE_RETURN_IF_ERROR(r->EnterSection(tag, &payload));
    DACE_RETURN_IF_ERROR(layer->Deserialize(&payload));
    if (payload.remaining() != 0) {
      return Status::DataLoss(std::string(what) +
                              " section has trailing bytes");
    }
    return Status::OK();
  };
  DACE_RETURN_IF_ERROR(load(kSectionAttention, &staged.attention, "attention"));
  DACE_RETURN_IF_ERROR(load(kSectionFc1, &staged.fc1, "fc1"));
  DACE_RETURN_IF_ERROR(load(kSectionFc2, &staged.fc2, "fc2"));
  DACE_RETURN_IF_ERROR(load(kSectionFc3, &staged.fc3, "fc3"));
  if (!r->AtEnd()) {
    uint32_t tag = 0;
    DACE_RETURN_IF_ERROR(r->PeekSectionTag(&tag));
    if (tag == kSectionStudent) {
      // Optional trailing student section. The staged student is constructed
      // with the config dims and then overwritten by Deserialize;
      // ValidateStaged rejects a checkpoint student of another architecture.
      staged.student = std::make_unique<StudentModel>(
          config_.student_hidden1, config_.student_hidden2, /*seed=*/0);
      DACE_RETURN_IF_ERROR(load(kSectionStudent, staged.student.get(),
                                "student"));
    }
  }
  if (!r->AtEnd()) {
    // Optional trailing lineage section (always after the student when both
    // are present): the payload is the raw provenance string.
    ByteReader payload;
    DACE_RETURN_IF_ERROR(r->EnterSection(kSectionLineage, &payload));
    staged.lineage.resize(payload.remaining());
    DACE_RETURN_IF_ERROR(
        payload.ReadBytes(staged.lineage.data(), staged.lineage.size()));
  }
  DACE_RETURN_IF_ERROR(r->ExpectEnd());
  DACE_RETURN_IF_ERROR(ValidateStaged(staged));
  CommitStaged(std::move(staged));
  return Status::OK();
}

Status DaceModel::ValidateStaged(const StagedWeights& staged) const {
  // Loading weights of another architecture would otherwise surface as a
  // DACE_CHECK abort deep inside the first matmul — or worse, as silently
  // garbage predictions if the shapes happen to line up.
  const auto dim_error = [](const char* what, size_t got, int want) {
    return Status::FailedPrecondition(
        std::string("checkpoint weights incompatible with this config: ") +
        what + " is " + std::to_string(got) + ", expected " +
        std::to_string(want));
  };
  const nn::TreeAttention& a = staged.attention;
  if (a.d_model() != static_cast<size_t>(config_.d_model)) {
    return dim_error("attention d_model", a.d_model(), config_.d_model);
  }
  if (a.d_k() != static_cast<size_t>(config_.d_k)) {
    return dim_error("attention d_k", a.d_k(), config_.d_k);
  }
  if (a.d_v() != static_cast<size_t>(config_.d_v)) {
    return dim_error("attention d_v", a.d_v(), config_.d_v);
  }
  const std::tuple<const nn::Linear*, const char*, int, int> layers[] = {
      {&staged.fc1, "fc1", config_.d_v, config_.hidden1},
      {&staged.fc2, "fc2", config_.hidden1, config_.hidden2},
      {&staged.fc3, "fc3", config_.hidden2, 1}};
  for (const auto& [layer, name, in, out] : layers) {
    if (layer->in_dim() != static_cast<size_t>(in)) {
      return dim_error((std::string(name) + " in_dim").c_str(),
                       layer->in_dim(), in);
    }
    if (layer->out_dim() != static_cast<size_t>(out)) {
      return dim_error((std::string(name) + " out_dim").c_str(),
                       layer->out_dim(), out);
    }
  }
  const bool has_lora = staged.fc1.has_lora();
  if (staged.fc2.has_lora() != has_lora ||
      staged.fc3.has_lora() != has_lora) {
    return Status::DataLoss(
        "LoRA adapters present on some MLP layers but not others");
  }
  if (has_lora) {
    const std::tuple<const nn::Linear*, const char*, int> ranks[] = {
        {&staged.fc1, "fc1", config_.lora_r1},
        {&staged.fc2, "fc2", config_.lora_r2},
        {&staged.fc3, "fc3", config_.lora_r3}};
    for (const auto& [layer, name, want] : ranks) {
      if (layer->lora_rank() != static_cast<size_t>(want)) {
        return dim_error((std::string(name) + " lora_rank").c_str(),
                         layer->lora_rank(), want);
      }
    }
  }
  if (staged.student != nullptr) {
    if (staged.student->hidden1() != config_.student_hidden1) {
      return dim_error("student hidden1",
                       static_cast<size_t>(staged.student->hidden1()),
                       config_.student_hidden1);
    }
    if (staged.student->hidden2() != config_.student_hidden2) {
      return dim_error("student hidden2",
                       static_cast<size_t>(staged.student->hidden2()),
                       config_.student_hidden2);
    }
  }
  return Status::OK();
}

void DaceModel::CommitStaged(StagedWeights&& staged) {
  attention_ = std::move(staged.attention);
  fc1_ = std::move(staged.fc1);
  fc2_ = std::move(staged.fc2);
  fc3_ = std::move(staged.fc3);
  lora_attached_ = fc1_.has_lora();
  // The student follows the teacher wholesale: a checkpoint without a
  // student section drops any live student (it answered for other weights).
  student_ = std::move(staged.student);
  // Lineage follows the same rule: it describes the weights being committed,
  // so a checkpoint without the section clears any stale tag.
  lineage_ = std::move(staged.lineage);
  ++weights_version_;  // loaded weights replace whatever was cached against
}

// --------------------------------------------------------- DaceEstimator --

DaceEstimator::DaceEstimator(const DaceConfig& config)
    : config_(config), model_(config) {}

featurize::FeaturizerConfig DaceEstimator::FeatConfig() const {
  featurize::FeaturizerConfig fc;
  fc.alpha = config_.alpha;
  fc.tree_attention = config_.tree_attention;
  fc.use_actual_cardinality = config_.use_actual_cardinality;
  return fc;
}

void DaceEstimator::set_thread_pool(ThreadPool* pool) {
  pool_ = pool;
  model_.set_thread_pool(pool);
  // Worker scratch is re-sized for the new pool on the next batch call.
  batch_scratch_.clear();
  pack_scratch_.clear();
}

DaceEstimator::PackedMode DaceEstimator::DefaultPackedMode() {
  static const PackedMode mode = [] {
    const char* env = std::getenv("DACE_PACKED");
    if (env == nullptr || env[0] == '\0') return PackedMode::kAuto;
    if (std::strcmp(env, "auto") == 0) return PackedMode::kAuto;
    if (std::strcmp(env, "on") == 0) return PackedMode::kOn;
    if (std::strcmp(env, "off") == 0) return PackedMode::kOff;
    DACE_CHECK(false) << "unknown DACE_PACKED value '" << env
                      << "' (expected 'auto', 'on' or 'off')";
    return PackedMode::kAuto;
  }();
  return mode;
}

DaceEstimator::TierMode DaceEstimator::DefaultTierMode() {
  static const TierMode mode = [] {
    const char* env = std::getenv("DACE_TIER");
    if (env == nullptr || env[0] == '\0') return TierMode::kAuto;
    if (std::strcmp(env, "auto") == 0) return TierMode::kAuto;
    if (std::strcmp(env, "teacher") == 0) return TierMode::kTeacherOnly;
    if (std::strcmp(env, "student") == 0) return TierMode::kStudentOnly;
    DACE_CHECK(false) << "unknown DACE_TIER value '" << env
                      << "' (expected 'auto', 'teacher' or 'student')";
    return TierMode::kAuto;
  }();
  return mode;
}

std::vector<featurize::PlanFeatures> DaceEstimator::FeaturizeAll(
    const std::vector<plan::QueryPlan>& plans) const {
  // Featurize the whole corpus once, up front and in parallel; slot i
  // depends only on plan i, so the result is pool-size independent.
  std::vector<featurize::PlanFeatures> data(plans.size());
  const featurize::FeaturizerConfig fc = FeatConfig();
  model_.thread_pool()->ParallelFor(0, plans.size(), [&](size_t i) {
    data[i] = featurizer_.Featurize(plans[i], fc);
  });
  return data;
}

void DaceEstimator::Train(const std::vector<plan::QueryPlan>& plans) {
  DACE_CHECK(!plans.empty());
  featurizer_.Fit(plans);
  last_train_stats_ = model_.Train(FeaturizeAll(plans));
}

TrainStats DaceEstimator::FineTune(const std::vector<plan::QueryPlan>& plans) {
  DACE_CHECK(featurizer_.fitted()) << "FineTune requires a pre-trained model";
  last_train_stats_ = model_.FineTuneLora(FeaturizeAll(plans));
  return last_train_stats_;
}

TrainStats DaceEstimator::FineTune(const std::vector<plan::QueryPlan>& plans,
                                   uint64_t seed) {
  DACE_CHECK(featurizer_.fitted()) << "FineTune requires a pre-trained model";
  last_train_stats_ = model_.FineTuneLora(FeaturizeAll(plans), seed);
  return last_train_stats_;
}

StudentTrainStats DaceEstimator::Distill(
    const std::vector<plan::QueryPlan>& plans) {
  DACE_CHECK(featurizer_.fitted())
      << "Distill requires a trained teacher: call Train() first";
  DACE_CHECK(!plans.empty());
  const std::vector<featurize::PlanFeatures> data = FeaturizeAll(plans);
  const featurize::FeaturizerConfig fc = FeatConfig();
  // Student inputs are the float serving features widened to double: the
  // trainer sees bit-for-bit what StudentFeaturizeInto will produce at serve
  // time (floats widen exactly).
  nn::Matrix inputs(plans.size(),
                    static_cast<size_t>(featurize::kStudentFeatureDim));
  model_.thread_pool()->ParallelFor(0, plans.size(), [&](size_t i) {
    float row[featurize::kStudentFeatureDim];
    featurizer_.StudentFeaturizeInto(plans[i], fc, row);
    double* dst = inputs.RowPtr(i);
    for (int j = 0; j < featurize::kStudentFeatureDim; ++j) {
      dst[j] = static_cast<double>(row[j]);
    }
  });
  const StudentTrainStats stats = model_.DistillStudent(data, inputs);
  TierGateThresholdGauge()->Set(model_.student()->gate_threshold());
  TierGateQBoundGauge()->Set(model_.student()->gate_q_bound());
  return stats;
}

double DaceEstimator::PredictMs(const plan::QueryPlan& plan) const {
  DACE_CHECK(featurizer_.fitted())
      << "DaceEstimator::PredictMs called before the estimator was trained: "
         "call Train() or LoadFromFile() first";
  DACE_TRACE_SPAN("predict");
  const uint64_t t0_us = LatencyNowUs();
  const featurize::FeaturizerConfig fc = FeatConfig();
  const uint64_t version = model_.weights_version();
  const uint64_t fp = featurizer_.Fingerprint(plan, fc);
  double ms = 0.0;
  if (prediction_cache_->Lookup(version, fp, &ms)) {
    PredictionsCounter()->Add(1);
    PredictLatencyUsHistogram()->Observe(
        static_cast<double>(LatencyNowUs() - t0_us));
    return ms;
  }
  featurize::PlanFeatures f;
  {
    DACE_TRACE_SPAN("predict.featurize");
    f = featurizer_.Featurize(plan, fc);
  }
  double scaled = 0.0;
  {
    DACE_TRACE_SPAN("predict.forward");
    scaled = model_.PredictRoot(f);
  }
  {
    DACE_TRACE_SPAN("predict.inverse_transform");
    ms = featurizer_.InverseTransformTime(scaled);
  }
  prediction_cache_->Insert(version, fp, ms);
  PredictionsCounter()->Add(1);
  PredictLatencyUsHistogram()->Observe(
      static_cast<double>(LatencyNowUs() - t0_us));
  return ms;
}

std::vector<double> DaceEstimator::PredictBatchMs(
    std::span<const plan::QueryPlan> plans) const {
  std::vector<const plan::QueryPlan*>& ptrs = call_scratch_.ptrs;
  ptrs.clear();
  ptrs.reserve(plans.size());
  for (const plan::QueryPlan& plan : plans) ptrs.push_back(&plan);
  std::vector<double> out;
  PredictBatchMsInto(ptrs, &out);
  return out;
}

std::vector<double> DaceEstimator::PredictBatchMs(
    std::span<const plan::QueryPlan* const> plans) const {
  std::vector<double> out;
  PredictBatchMsInto(plans, &out);
  return out;
}

void DaceEstimator::ServeStudentTier(
    std::span<const plan::QueryPlan* const> plans, const StudentModel& student,
    uint64_t version, const featurize::FeaturizerConfig& fc, bool cache_on,
    std::vector<double>* out) const {
  CallScratch& cs = call_scratch_;
  ThreadPool* pool = model_.thread_pool();
  const size_t m = cs.misses.size();
  TierRequestsCounter()->Add(m);
  cs.served.assign(m, 0);
  const bool keep_all = tier_mode_ == TierMode::kStudentOnly;
  const double tau = student.gate_threshold();
  const double q_bound = student.gate_q_bound();
  const bool i8 =
      nn::kernel::ActivePrecision() == nn::kernel::Precision::kI8;
  pool->ParallelForWorker(0, m, [&](int slot, size_t mi) {
    const size_t i = cs.misses[mi];
    const uint64_t t0_us = LatencyNowUs();
    BatchScratch& s = batch_scratch_[static_cast<size_t>(slot)];
    featurizer_.StudentFeaturizeInto(*plans[i], fc, s.student_input);
    double y = 0.0, r = 0.0;
    if (i8) {
      float yf = 0.0f, rf = 0.0f;
      student.PredictI8(s.student_input, &s.i8, &yf, &rf);
      y = static_cast<double>(yf);
      r = static_cast<double>(rf);
    } else {
      student.PredictF64(s.student_input, &y, &r);
    }
    // Agreement gate: keep the student's answer only when its own predicted
    // residual plus the quantization bound stays inside the calibrated
    // threshold. The decision reads nothing thread- or ISA-dependent (the
    // i8 forward is bit-identical across ISAs), so the escalated set is
    // deterministic.
    if (keep_all || r + q_bound <= tau) {
      const double ms = featurizer_.InverseTransformTime(y);
      (*out)[i] = ms;
      // With the cache off Insert is a no-op behind a mutex — skip the lock
      // entirely on this microsecond-scale path.
      if (cache_on) prediction_cache_->Insert(version, cs.fps[i], ms);
      cs.served[mi] = 1;
      PredictionsCounter()->Add(1);
      const double elapsed = static_cast<double>(LatencyNowUs() - t0_us);
      PredictLatencyUsHistogram()->Observe(elapsed);
      TierStudentLatencyHistogram()->Observe(elapsed);
    }
  });
  cs.escalated.clear();
  for (size_t mi = 0; mi < m; ++mi) {
    if (cs.served[mi] == 0) cs.escalated.push_back(cs.misses[mi]);
  }
  TierStudentCounter()->Add(m - cs.escalated.size());
  TierEscalatedCounter()->Add(cs.escalated.size());
  if (m > 0) {
    TierEscalatedFractionHistogram()->Observe(
        static_cast<double>(cs.escalated.size()) / static_cast<double>(m));
  }
}

void DaceEstimator::PredictBatchMsInto(
    std::span<const plan::QueryPlan* const> plans,
    std::vector<double>* out) const {
  out->resize(plans.size());
  if (plans.empty()) return;
  DACE_CHECK(featurizer_.fitted())
      << "DaceEstimator::PredictBatchMs called before the estimator was "
         "trained: call Train() or LoadFromFile() first";
  ThreadPool* pool = model_.thread_pool();
  if (batch_scratch_.size() < static_cast<size_t>(pool->num_threads())) {
    batch_scratch_.resize(static_cast<size_t>(pool->num_threads()));
  }
  DACE_TRACE_SPAN("predict.batch");
  CallScratch& cs = call_scratch_;
  const featurize::FeaturizerConfig fc = FeatConfig();
  const uint64_t version = model_.weights_version();
  // out[i] depends only on plan i and the weights, so results are identical
  // for every pool size; worker slots only select which scratch to reuse.
  // The prediction cache preserves that: a hit returns the exact double a
  // cold run would have produced under the same weights.
  //
  // Pass 1 — fingerprint every plan and resolve cache hits. With the cache
  // disabled (capacity 0) every Lookup would miss and every Insert is a
  // no-op, so the fingerprint pass is skipped entirely — that removes the
  // whole hashing walk from cache-less serving tiers and benches.
  const bool cache_on = prediction_cache_->GetStats().capacity > 0;
  cs.fps.assign(plans.size(), 0);
  cs.hit.assign(plans.size(), 0);
  if (cache_on) {
    pool->ParallelForWorker(0, plans.size(), [&](int slot, size_t i) {
      const uint64_t t0_us = LatencyNowUs();
      BatchScratch& s = batch_scratch_[static_cast<size_t>(slot)];
      cs.fps[i] = featurizer_.Fingerprint(*plans[i], fc, &s.fscratch);
      double ms = 0.0;
      if (prediction_cache_->Lookup(version, cs.fps[i], &ms)) {
        (*out)[i] = ms;
        cs.hit[i] = 1;
        PredictionsCounter()->Add(1);
        PredictLatencyUsHistogram()->Observe(
            static_cast<double>(LatencyNowUs() - t0_us));
      }
    });
  }
  cs.misses.clear();
  for (size_t i = 0; i < plans.size(); ++i) {
    if (cs.hit[i] == 0) cs.misses.push_back(i);
  }
  if (!cs.misses.empty()) {
    // Tier dispatch: the student answers misses first when eligible; plans
    // its agreement gate rejects escalate to the packed teacher.
    const StudentModel* student =
        tier_mode_ == TierMode::kTeacherOnly ? nullptr : model_.student();
    const std::vector<size_t>* to_teacher = &cs.misses;
    if (student != nullptr) {
      ServeStudentTier(plans, *student, version, fc, cache_on, out);
      to_teacher = &cs.escalated;
    } else {
      TierTeacherCounter()->Add(cs.misses.size());
    }
    if (!to_teacher->empty()) {
      const uint64_t tier_t0_us = LatencyNowUs();
      const bool use_packed =
          packed_mode_ == PackedMode::kOn ||
          (packed_mode_ == PackedMode::kAuto && to_teacher->size() >= 2);
      if (use_packed) {
        PredictPackedBatch(plans, *to_teacher, cs.fps, version, fc, out);
      } else {
        pool->ParallelForWorker(0, to_teacher->size(), [&](int slot,
                                                           size_t mi) {
          const size_t i = (*to_teacher)[mi];
          const uint64_t t0_us = LatencyNowUs();
          BatchScratch& s = batch_scratch_[static_cast<size_t>(slot)];
          {
            DACE_TRACE_SPAN("predict.featurize");
            featurizer_.FeaturizeInto(*plans[i], fc, &s.feats, &s.fscratch);
          }
          {
            DACE_TRACE_SPAN("predict.forward");
            model_.PredictAllInto(s.feats, &s.ws, &s.preds);
          }
          {
            DACE_TRACE_SPAN("predict.inverse_transform");
            (*out)[i] = featurizer_.InverseTransformTime(s.preds[0]);
          }
          prediction_cache_->Insert(version, cs.fps[i], (*out)[i]);
          const size_t n = plans[i]->size();
          s.used_nodes = std::max(s.used_nodes, n);
          s.alloc_nodes = std::max(s.alloc_nodes, n);
          PredictionsCounter()->Add(1);
          PredictLatencyUsHistogram()->Observe(
              static_cast<double>(LatencyNowUs() - t0_us));
        });
      }
      if (student != nullptr) {
        // Escalated plans experienced the whole teacher phase on top of
        // their student pass.
        const double elapsed =
            static_cast<double>(LatencyNowUs() - tier_t0_us);
        for (size_t j = 0; j < to_teacher->size(); ++j) {
          TierEscalatedLatencyHistogram()->Observe(elapsed);
        }
      }
    }
  }
  GovernScratch();
}

void DaceEstimator::PredictPackedBatch(
    std::span<const plan::QueryPlan* const> plans,
    const std::vector<size_t>& misses, const std::vector<uint64_t>& fps,
    uint64_t version, const featurize::FeaturizerConfig& fc,
    std::vector<double>* out) const {
  ThreadPool* pool = model_.thread_pool();
  if (pack_scratch_.size() < static_cast<size_t>(pool->num_threads())) {
    pack_scratch_.resize(static_cast<size_t>(pool->num_threads()));
  }
  if (nn::kernel::ActivePrecision() != nn::kernel::Precision::kF64) {
    // Fold once on the coordinator; the packs only read the image. (kI8 is
    // a student-tier precision — the teacher serves its f32 image there.)
    model_.EnsureF32Weights();
  }
  // Sort misses by descending node count so each pack holds similarly sized
  // plans: the score tiles are column-padded to the pack's max_nodes, so
  // mixing one deep plan with many shallow ones is what craters occupancy.
  // Plain sort with an index tie-break — same order a stable_sort would
  // produce, without stable_sort's temporary buffer allocation.
  std::vector<size_t>& order = call_scratch_.order;
  order.assign(misses.begin(), misses.end());
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const size_t na = plans[a]->size();
    const size_t nb = plans[b]->size();
    if (na != nb) return na > nb;
    return a < b;
  });
  const size_t num_packs = (order.size() + kPackMaxPlans - 1) / kPackMaxPlans;
  pool->ParallelForWorker(0, num_packs, [&](int slot, size_t p) {
    DACE_TRACE_SPAN("predict.pack");
    const uint64_t t0_us = LatencyNowUs();
    PackScratch& s = pack_scratch_[static_cast<size_t>(slot)];
    const size_t lo = p * kPackMaxPlans;
    const size_t hi = std::min(lo + kPackMaxPlans, order.size());
    const size_t count = hi - lo;
    if (s.feats.size() < count) s.feats.resize(count);
    s.feat_ptrs.clear();
    {
      DACE_TRACE_SPAN("predict.featurize");
      for (size_t j = 0; j < count; ++j) {
        featurizer_.FeaturizeInto(*plans[order[lo + j]], fc, &s.feats[j],
                                  &s.fscratch);
        s.feat_ptrs.push_back(&s.feats[j]);
      }
    }
    {
      DACE_TRACE_SPAN("predict.forward");
      model_.PredictPackedInto(s.feat_ptrs, &s.ws, &s.roots);
    }
    for (size_t j = 0; j < count; ++j) {
      const size_t idx = order[lo + j];
      const double ms = featurizer_.InverseTransformTime(s.roots[j]);
      (*out)[idx] = ms;
      prediction_cache_->Insert(version, fps[idx], ms);
    }
    const nn::PackLayout& layout = s.ws.layout;
    s.used_nodes = std::max(s.used_nodes, layout.max_nodes);
    s.alloc_nodes = std::max(s.alloc_nodes, layout.max_nodes);
    PackPacksCounter()->Add(1);
    PackPlansCounter()->Add(count);
    PackRowsValidCounter()->Add(layout.total_rows);
    const size_t cells = count * layout.max_nodes;
    PackRowsPaddedCounter()->Add(cells - layout.total_rows);
    PackOccupancyHistogram()->Observe(
        cells > 0 ? static_cast<double>(layout.total_rows) /
                        static_cast<double>(cells)
                  : 1.0);
    // Per-plan latency on the packed path is the pack's wall time: that is
    // what each caller of the coalesced batch experienced for its plan.
    const double elapsed = static_cast<double>(LatencyNowUs() - t0_us);
    PredictionsCounter()->Add(count);
    for (size_t j = 0; j < count; ++j) {
      PredictLatencyUsHistogram()->Observe(elapsed);
    }
  });
}

void DaceEstimator::GovernScratch() const {
  for (BatchScratch& s : batch_scratch_) {
    if (s.governor.Observe(s.used_nodes, s.alloc_nodes)) {
      // Drop the whole scratch: the monotone buffers (featurization
      // matrices, workspace activation tiles, cached copies) re-warm to the
      // current workload's sizes on the next miss.
      s.feats = featurize::PlanFeatures();
      s.ws = DaceModel::Workspace();
      s.preds = std::vector<double>();
      s.alloc_nodes = 0;
      ScratchShrinksCounter()->Add(1);
    }
    s.used_nodes = 0;
  }
  for (PackScratch& s : pack_scratch_) {
    if (s.governor.Observe(s.used_nodes, s.alloc_nodes)) {
      s.feats = std::vector<featurize::PlanFeatures>();
      s.feat_ptrs = std::vector<const featurize::PlanFeatures*>();
      s.ws = DaceModel::PackedWorkspace();
      s.roots = std::vector<double>();
      s.alloc_nodes = 0;
      ScratchShrinksCounter()->Add(1);
    }
    s.used_nodes = 0;
  }
}

size_t DaceEstimator::InferenceScratchPeakNodes() const {
  size_t peak = 0;
  for (const BatchScratch& s : batch_scratch_) {
    peak = std::max(peak, s.alloc_nodes);
  }
  for (const PackScratch& s : pack_scratch_) {
    peak = std::max(peak, s.alloc_nodes);
  }
  return peak;
}

std::vector<double> DaceEstimator::PredictSubPlansMs(
    const plan::QueryPlan& plan) const {
  DACE_CHECK(featurizer_.fitted())
      << "DaceEstimator::PredictSubPlansMs called before the estimator was "
         "trained: call Train() or LoadFromFile() first";
  const featurize::PlanFeatures f = featurizer_.Featurize(plan, FeatConfig());
  std::vector<double> scaled = model_.PredictAll(f);
  for (double& v : scaled) v = featurizer_.InverseTransformTime(v);
  return scaled;
}

std::vector<std::vector<double>> DaceEstimator::PredictSubPlansBatchMs(
    std::span<const plan::QueryPlan* const> plans) const {
  std::vector<std::vector<double>> out(plans.size());
  if (plans.empty()) return out;
  DACE_CHECK(featurizer_.fitted())
      << "DaceEstimator::PredictSubPlansBatchMs called before the estimator "
         "was trained: call Train() or LoadFromFile() first";
  ThreadPool* pool = model_.thread_pool();
  const featurize::FeaturizerConfig fc = FeatConfig();
  const bool use_packed =
      packed_mode_ == PackedMode::kOn ||
      (packed_mode_ == PackedMode::kAuto && plans.size() >= 2);
  if (!use_packed) {
    if (batch_scratch_.size() < static_cast<size_t>(pool->num_threads())) {
      batch_scratch_.resize(static_cast<size_t>(pool->num_threads()));
    }
    pool->ParallelForWorker(0, plans.size(), [&](int slot, size_t i) {
      BatchScratch& s = batch_scratch_[static_cast<size_t>(slot)];
      featurizer_.FeaturizeInto(*plans[i], fc, &s.feats, &s.fscratch);
      model_.PredictAllInto(s.feats, &s.ws, &s.preds);
      std::vector<double>& r = out[i];
      r.resize(s.preds.size());
      for (size_t j = 0; j < s.preds.size(); ++j) {
        r[j] = featurizer_.InverseTransformTime(s.preds[j]);
      }
      const size_t n = plans[i]->size();
      s.used_nodes = std::max(s.used_nodes, n);
      s.alloc_nodes = std::max(s.alloc_nodes, n);
    });
    GovernScratch();
    return out;
  }
  if (pack_scratch_.size() < static_cast<size_t>(pool->num_threads())) {
    pack_scratch_.resize(static_cast<size_t>(pool->num_threads()));
  }
  if (nn::kernel::ActivePrecision() != nn::kernel::Precision::kF64) {
    model_.EnsureF32Weights();
  }
  // Same size-sorted packing as the root-only path (PredictPackedBatch).
  std::vector<size_t>& order = call_scratch_.order;
  order.resize(plans.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const size_t na = plans[a]->size();
    const size_t nb = plans[b]->size();
    if (na != nb) return na > nb;
    return a < b;
  });
  const size_t num_packs = (order.size() + kPackMaxPlans - 1) / kPackMaxPlans;
  pool->ParallelForWorker(0, num_packs, [&](int slot, size_t p) {
    DACE_TRACE_SPAN("predict.pack");
    PackScratch& s = pack_scratch_[static_cast<size_t>(slot)];
    const size_t lo = p * kPackMaxPlans;
    const size_t hi = std::min(lo + kPackMaxPlans, order.size());
    const size_t count = hi - lo;
    if (s.feats.size() < count) s.feats.resize(count);
    s.feat_ptrs.clear();
    for (size_t j = 0; j < count; ++j) {
      featurizer_.FeaturizeInto(*plans[order[lo + j]], fc, &s.feats[j],
                                &s.fscratch);
      s.feat_ptrs.push_back(&s.feats[j]);
    }
    model_.PredictPackedAllInto(s.feat_ptrs, &s.ws, &s.rows);
    for (size_t j = 0; j < count; ++j) {
      const size_t idx = order[lo + j];
      std::vector<double>& r = out[idx];
      r.resize(s.rows[j].size());
      for (size_t v = 0; v < s.rows[j].size(); ++v) {
        r[v] = featurizer_.InverseTransformTime(s.rows[j][v]);
      }
    }
    const nn::PackLayout& layout = s.ws.layout;
    s.used_nodes = std::max(s.used_nodes, layout.max_nodes);
    s.alloc_nodes = std::max(s.alloc_nodes, layout.max_nodes);
    PackPacksCounter()->Add(1);
    PackPlansCounter()->Add(count);
    PackRowsValidCounter()->Add(layout.total_rows);
    const size_t cells = count * layout.max_nodes;
    PackRowsPaddedCounter()->Add(cells - layout.total_rows);
    PackOccupancyHistogram()->Observe(
        cells > 0 ? static_cast<double>(layout.total_rows) /
                        static_cast<double>(cells)
                  : 1.0);
  });
  GovernScratch();
  return out;
}

std::vector<double> DaceEstimator::Encode(const plan::QueryPlan& plan) const {
  DACE_CHECK(featurizer_.fitted())
      << "DaceEstimator::Encode called before the estimator was trained: "
         "call Train() or LoadFromFile() first";
  const featurize::PlanFeatures f = featurizer_.Featurize(plan, FeatConfig());
  return model_.EncodeRoot(f);
}

std::string DaceEstimator::SerializeToString() const {
  CheckpointWriter writer(config_);
  writer.BeginSection(kSectionFeaturizer);
  featurizer_.Serialize(writer.bytes());
  writer.EndSection();
  model_.AppendSections(&writer);
  return std::move(writer).Finalize();
}

Status DaceEstimator::SaveToFile(const std::string& path) const {
  // The whole artifact is built in memory (headers, framed sections, CRC
  // trailer) and hits the filesystem exactly once, via temp-file + rename:
  // a reader of `path` can never observe a torn checkpoint, and a failed
  // write never clobbers the previous one.
  return WriteFileAtomic(path, SerializeToString());
}

Status DaceEstimator::LoadFromFile(const std::string& path) {
  std::string blob;
  DACE_RETURN_IF_ERROR(ReadFileToString(path, &blob));
  return LoadFromString(blob);
}

Status DaceEstimator::LoadFromString(std::string_view blob) {
  featurize::Featurizer staged_featurizer;
  if (HasCheckpointMagic(blob)) {
    CheckpointReader reader;
    DACE_RETURN_IF_ERROR(reader.Init(blob));  // magic/version/endian/checksum
    DACE_RETURN_IF_ERROR(reader.MatchesConfig(config_));
    ByteReader section;
    DACE_RETURN_IF_ERROR(reader.EnterSection(kSectionFeaturizer, &section));
    DACE_RETURN_IF_ERROR(staged_featurizer.Deserialize(&section));
    if (section.remaining() != 0) {
      return Status::DataLoss("featurizer section has trailing bytes");
    }
    // Commits the model weights only if every remaining section parses,
    // validates against config_ and exhausts the file.
    DACE_RETURN_IF_ERROR(model_.LoadSections(&reader));
  } else {
    // Legacy format 0: headerless featurizer + model stream. There is no
    // checksum to verify, but the same staging discipline applies — a
    // truncated legacy file cannot leave a half-old/half-new model.
    ByteReader reader(blob.data(), blob.size());
    DACE_RETURN_IF_ERROR(staged_featurizer.Deserialize(&reader));
    DACE_RETURN_IF_ERROR(model_.Deserialize(&reader));
  }
  // Past this point nothing can fail: the model already committed (bumping
  // weights_version_, which invalidates the prediction cache), so the
  // featurizer must commit too.
  featurizer_ = std::move(staged_featurizer);
  if (model_.has_student()) {
    TierGateThresholdGauge()->Set(model_.student()->gate_threshold());
    TierGateQBoundGauge()->Set(model_.student()->gate_q_bound());
  }
  return Status::OK();
}

std::unique_ptr<DaceEstimator> DaceEstimator::Clone() const {
  auto clone = std::make_unique<DaceEstimator>(config_);
  // The round-trip goes through the same validated checkpoint image as
  // save/load, so the clone's predictions are bit-identical to the
  // original's by the established serialization contract — while its RNG,
  // scratch, caches and counters are all fresh.
  const Status loaded = clone->LoadFromString(SerializeToString());
  DACE_CHECK(loaded.ok()) << "self-serialized checkpoint failed to load: "
                          << loaded.ToString();
  clone->set_name(name_);
  clone->set_prediction_cache_capacity(prediction_cache_->GetStats().capacity);
  return clone;
}

}  // namespace dace::core
