#ifndef DACE_CORE_CHECKPOINT_H_
#define DACE_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/file_io.h"
#include "util/serialize.h"
#include "util/status.h"

namespace dace::core {

struct DaceConfig;

// -----------------------------------------------------------------------
// Checkpoint wire format (format version 1)
//
//   header (48 bytes)
//     bytes 0..7   magic "DACECKPT"
//     u32          format version (1)
//     u32          endianness marker 0x01020304 (written native; a reader on
//                  an opposite-endian machine sees 0x04030201 and rejects)
//     u32 × 8      DaceConfig compatibility fingerprint: d_model, d_k, d_v,
//                  hidden1, hidden2, lora_r1, lora_r2, lora_r3
//   sections (in fixed order)
//     u32 tag, u64 payload length, payload bytes — one frame per component:
//     featurizer, attention, fc1, fc2, fc3, then optionally the distilled
//     student (present iff the model was distilled when saved)
//   trailer (8 bytes, always the last 8 bytes of the file)
//     u32 trailer tag (0), u32 CRC-32 over every preceding byte
//
// Files that do not begin with the magic are treated as legacy "format 0":
// the original headerless concatenation of featurizer + model bytes, kept
// loadable so pre-existing fixtures and artifacts survive the upgrade.
// Format-0 loads get the same transactional staging and shape validation,
// but no checksum — the framing simply did not exist to carry one.
// -----------------------------------------------------------------------

inline constexpr char kCheckpointMagic[8] = {'D', 'A', 'C', 'E',
                                             'C', 'K', 'P', 'T'};
inline constexpr uint32_t kCheckpointFormatVersion = 1;
inline constexpr uint32_t kEndiannessMarker = 0x01020304u;
inline constexpr size_t kCheckpointHeaderSize = 8 + 4 + 4 + 8 * 4;
inline constexpr size_t kCheckpointTrailerSize = 4 + 4;

// Section tags, in the order SaveToFile emits them. kSectionStudent and
// kSectionLineage are OPTIONAL and trailing: checkpoints written before
// distillation (or by older builds) simply end after fc3, and readers probe
// for them with AtEnd() + PeekSectionTag() — which is what keeps pre-student
// and pre-lineage checkpoints loadable unchanged.
inline constexpr uint32_t kSectionFeaturizer = 1;
inline constexpr uint32_t kSectionAttention = 2;
inline constexpr uint32_t kSectionFc1 = 3;
inline constexpr uint32_t kSectionFc2 = 4;
inline constexpr uint32_t kSectionFc3 = 5;
inline constexpr uint32_t kSectionStudent = 6;
// Provenance of the weights: a free-form lineage string stamped by whoever
// produced the checkpoint (the adaptation loop records tenant, parent
// generation and fine-tune seed) so a rollback target or promoted candidate
// is attributable from the artifact alone.
inline constexpr uint32_t kSectionLineage = 7;
inline constexpr uint32_t kTrailerTag = 0;

// The decoded header: format version plus the DaceConfig dimensions the
// checkpoint was produced under.
struct CheckpointHeader {
  uint32_t format_version = 0;
  uint32_t d_model = 0;
  uint32_t d_k = 0;
  uint32_t d_v = 0;
  uint32_t hidden1 = 0;
  uint32_t hidden2 = 0;
  uint32_t lora_r1 = 0;
  uint32_t lora_r2 = 0;
  uint32_t lora_r3 = 0;
};

// True iff the buffer starts with the format-1 magic (i.e. is NOT a legacy
// format-0 stream).
bool HasCheckpointMagic(std::string_view blob);

// Builds a format-1 checkpoint in memory: header up front, framed sections
// through bytes(), CRC trailer on Finalize. Writing is infallible (memory
// only); the single fallible step is the atomic file write of the finished
// buffer, so a failed save can never leave a half-written checkpoint behind.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(const DaceConfig& config);

  // Target for section payloads; only write between Begin/EndSection.
  ByteWriter* bytes() { return &bytes_; }

  void BeginSection(uint32_t tag);
  void EndSection();

  // Appends the CRC trailer and releases the finished buffer.
  std::string Finalize() &&;

 private:
  ByteWriter bytes_;
  size_t open_length_offset_ = 0;  // 0 = no section open
};

// Validating reader over a complete checkpoint buffer. Init performs every
// whole-file check up front — magic, version, endianness, trailer framing,
// checksum — so by the time any payload byte is parsed the file is known to
// be exactly what was written. Sections are then consumed strictly in order.
class CheckpointReader {
 public:
  // The blob must outlive the reader (section readers alias into it).
  Status Init(std::string_view blob);

  const CheckpointHeader& header() const { return header_; }

  // FailedPrecondition naming every mismatched dimension if the checkpoint
  // was produced under a different DaceConfig than `config`.
  Status MatchesConfig(const DaceConfig& config) const;

  // Consumes the next section, which must carry `expected_tag`; *payload is
  // bounded to exactly the section's bytes.
  Status EnterSection(uint32_t expected_tag, ByteReader* payload);

  // DataLoss unless every section byte up to the trailer was consumed.
  Status ExpectEnd() const;

  // True once every section byte has been consumed — i.e. the next thing in
  // the file is the trailer. Lets loaders probe for optional trailing
  // sections (kSectionStudent, kSectionLineage) without attempting a read
  // that would fail.
  bool AtEnd() const { return cursor_ >= sections_end_; }

  // Tag of the next unconsumed section, without advancing. Lets loaders
  // dispatch among multiple optional trailing sections. DataLoss at end of
  // sections or on a malformed frame.
  Status PeekSectionTag(uint32_t* tag) const;

 private:
  std::string_view blob_;
  CheckpointHeader header_;
  size_t cursor_ = 0;        // next unread section byte
  size_t sections_end_ = 0;  // first trailer byte
};

// A section's location inside a checkpoint buffer, for tooling and the
// corruption fuzz test (which truncates at exactly these boundaries).
struct CheckpointSection {
  uint32_t tag = 0;
  size_t payload_offset = 0;  // first payload byte
  uint64_t payload_length = 0;
};

// Decodes the header and walks the section frames without touching payloads
// (and without requiring the checksum to match — inspection must work on the
// corrupt files the loader rejects). Fails on structural damage only.
Status InspectCheckpoint(std::string_view blob, CheckpointHeader* header,
                         std::vector<CheckpointSection>* sections);

// Whole-file helpers: the implementations moved to util/file_io.h (the obs
// sidecar writers need atomic file replacement below the core layer); these
// forwards keep the established core:: spellings working.
inline Status ReadFileToString(const std::string& path, std::string* out) {
  return ::dace::ReadFileToString(path, out);
}

// Writes data to a temp file in path's directory, flushes, and renames it
// over path — readers of `path` see either the complete old bytes or the
// complete new bytes, never a prefix. On any failure the temp file is
// removed and the existing file at `path` is left untouched.
inline Status WriteFileAtomic(const std::string& path, std::string_view data) {
  return ::dace::WriteFileAtomic(path, data);
}

}  // namespace dace::core

#endif  // DACE_CORE_CHECKPOINT_H_
