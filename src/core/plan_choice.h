#ifndef DACE_CORE_PLAN_CHOICE_H_
#define DACE_CORE_PLAN_CHOICE_H_

#include <span>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "plan/plan.h"

namespace dace::core {

// Scores complete candidate physical plans on behalf of the optimizer's
// plan-choice path (engine::Optimizer::ChoosePlan). LOWER is better; only
// the ORDER of scores within one candidate set matters, so implementations
// are free to return abstract cost units or predicted milliseconds.
//
// This is the Hyrise AbstractCostEstimator shape: one virtual per-plan cost
// hook plus a batch entry point, with the optimizer owning enumeration and
// the estimator owning ranking. Plugging in a learned estimator turns the
// repository's q-error story into a plan-SELECTION story — the central
// critique of "How Good are Learned Cost Models, Really?".
class PlanChoiceEstimator {
 public:
  virtual ~PlanChoiceEstimator() = default;

  virtual std::string Name() const = 0;

  // Score of one complete candidate plan. Must be deterministic for a given
  // plan (ChoosePlan's tie-breaking and the regret bench rely on it).
  virtual double ScorePlan(const plan::QueryPlan& plan) const = 0;

  // Scores a whole candidate set, indexed like `plans`. The default loops
  // over ScorePlan; estimators with a batched hot path override it. Every
  // implementation must return exactly what per-plan ScorePlan would.
  virtual std::vector<double> ScorePlans(
      std::span<const plan::QueryPlan> plans) const {
    std::vector<double> out;
    out.reserve(plans.size());
    for (const plan::QueryPlan& plan : plans) out.push_back(ScorePlan(plan));
    return out;
  }

  // True when scores are predicted milliseconds of wall time (learned
  // estimators): the selection bench can then compute q-error against the
  // simulated runtime. Abstract-unit scorers (the native PG-style model)
  // return false.
  virtual bool ScoresAreMilliseconds() const { return false; }
};

// Adapter: any learned CostEstimator (DACE, every baseline) drives plan
// choice by its predicted runtime. The batched path goes through
// PredictBatchMs, so DACE's packed/tiered/cached inference paths are used
// unchanged.
class EstimatorPlanChoice final : public PlanChoiceEstimator {
 public:
  // `estimator` must be trained and must outlive the adapter.
  explicit EstimatorPlanChoice(const CostEstimator* estimator)
      : estimator_(estimator) {}

  std::string Name() const override { return estimator_->Name(); }

  double ScorePlan(const plan::QueryPlan& plan) const override {
    return estimator_->PredictMs(plan);
  }

  std::vector<double> ScorePlans(
      std::span<const plan::QueryPlan> plans) const override {
    return estimator_->PredictBatchMs(plans);
  }

  bool ScoresAreMilliseconds() const override { return true; }

 private:
  const CostEstimator* estimator_;  // not owned
};

}  // namespace dace::core

#endif  // DACE_CORE_PLAN_CHOICE_H_
