#include "serve/model_registry.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace dace::serve {

namespace {

obs::Counter* SwapOkCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("serve.swap.ok");
  return c;
}

obs::Counter* SwapFailedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("serve.swap.failed");
  return c;
}

// Full SwapFromFile wall time (staging + validation + publish), observed on
// every outcome — failed swaps burn the same loader work and belong in the
// same distribution.
obs::Histogram* SwapDurationHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Default()->GetHistogram(
      "serve.swap.duration_us", obs::LatencyBucketsUs());
  return h;
}

}  // namespace

Status ModelRegistry::Register(std::string_view tenant,
                               std::shared_ptr<core::DaceEstimator> estimator) {
  if (tenant.empty()) return Status::InvalidArgument("empty tenant key");
  if (estimator == nullptr) {
    return Status::InvalidArgument("null estimator for tenant: " +
                                   std::string(tenant));
  }
  if (!estimator->featurizer().fitted()) {
    return Status::FailedPrecondition(
        "estimator for tenant '" + std::string(tenant) +
        "' is untrained: call Train() or LoadFromFile() before Register");
  }
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[std::string(tenant)];
  entry.estimator = std::move(estimator);
  ++entry.generation;
  return Status::OK();
}

StatusOr<ModelRegistry::Snapshot> ModelRegistry::Get(
    std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(tenant);
  if (it == entries_.end()) {
    return Status::NotFound("unknown tenant: " + std::string(tenant));
  }
  return Snapshot(it->second.estimator);
}

Status ModelRegistry::SwapFromFile(std::string_view tenant,
                                   const std::string& path) {
  DACE_TRACE_SPAN("serve.swap");
  const auto t0 = std::chrono::steady_clock::now();
  const auto observe_duration = [t0] {
    SwapDurationHistogram()->Observe(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };
  std::shared_ptr<core::DaceEstimator> current;
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(tenant);
    if (it == entries_.end()) {
      SwapFailedCounter()->Add(1);
      observe_duration();
      DACE_LOG(WARN) << "hot swap of tenant '" << std::string(tenant)
                     << "' (generation 0) from " << path
                     << " rejected: unknown tenant";
      return Status::NotFound("unknown tenant: " + std::string(tenant));
    }
    current = it->second.estimator;
    generation = it->second.generation;
  }
  // Stage entirely off the serving path: the checkpoint loader verifies the
  // checksum before parsing a payload byte, rejects config mismatches, and
  // validates every weight shape before committing into the staged
  // estimator. The published snapshot keeps serving throughout.
  auto staged = std::make_shared<core::DaceEstimator>(current->model().config());
  staged->set_name(current->Name());
  staged->set_prediction_cache_capacity(
      current->prediction_cache_stats().capacity);
  if (const Status status = staged->LoadFromFile(path); !status.ok()) {
    SwapFailedCounter()->Add(1);
    observe_duration();
    DACE_LOG(WARN) << "hot swap of tenant '" << std::string(tenant)
                   << "' (generation " << generation << ") from " << path
                   << " rejected: " << status.ToString();
    return status;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_[std::string(tenant)];
    entry.estimator = std::move(staged);
    ++entry.generation;
    generation = entry.generation;
  }
  SwapOkCounter()->Add(1);
  observe_duration();
  DACE_LOG(INFO) << "hot-swapped tenant '" << std::string(tenant)
                 << "' (generation " << generation << ") from " << path;
  return Status::OK();
}

uint64_t ModelRegistry::Generation(std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(tenant);
  return it == entries_.end() ? 0 : it->second.generation;
}

std::vector<std::string> ModelRegistry::Tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [tenant, entry] : entries_) out.push_back(tenant);
  return out;
}

}  // namespace dace::serve
