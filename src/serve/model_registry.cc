#include "serve/model_registry.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace dace::serve {

namespace {

obs::Counter* SwapOkCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("serve.swap.ok");
  return c;
}

obs::Counter* SwapFailedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("serve.swap.failed");
  return c;
}

// Full SwapFromFile wall time (staging + validation + publish), observed on
// every outcome — failed swaps burn the same loader work and belong in the
// same distribution.
obs::Histogram* SwapDurationHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Default()->GetHistogram(
      "serve.swap.duration_us", obs::LatencyBucketsUs());
  return h;
}

obs::Counter* CanaryCounter(const char* outcome) {
  return obs::MetricsRegistry::Default()->GetCounter(
      std::string("serve.canary.") + outcome);
}

}  // namespace

Status ModelRegistry::Register(std::string_view tenant,
                               std::shared_ptr<core::DaceEstimator> estimator) {
  if (tenant.empty()) return Status::InvalidArgument("empty tenant key");
  if (estimator == nullptr) {
    return Status::InvalidArgument("null estimator for tenant: " +
                                   std::string(tenant));
  }
  if (!estimator->featurizer().fitted()) {
    return Status::FailedPrecondition(
        "estimator for tenant '" + std::string(tenant) +
        "' is untrained: call Train() or LoadFromFile() before Register");
  }
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[std::string(tenant)];
  entry.estimator = std::move(estimator);
  ++entry.generation;
  return Status::OK();
}

StatusOr<ModelRegistry::Snapshot> ModelRegistry::Get(
    std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(tenant);
  if (it == entries_.end()) {
    return Status::NotFound("unknown tenant: " + std::string(tenant));
  }
  return Snapshot(it->second.estimator);
}

Status ModelRegistry::SwapFromFile(std::string_view tenant,
                                   const std::string& path) {
  DACE_TRACE_SPAN("serve.swap");
  const auto t0 = std::chrono::steady_clock::now();
  const auto observe_duration = [t0] {
    SwapDurationHistogram()->Observe(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };
  std::shared_ptr<core::DaceEstimator> current;
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(tenant);
    if (it == entries_.end()) {
      SwapFailedCounter()->Add(1);
      observe_duration();
      DACE_LOG(WARN) << "hot swap of tenant '" << std::string(tenant)
                     << "' (generation 0) from " << path
                     << " rejected: unknown tenant";
      return Status::NotFound("unknown tenant: " + std::string(tenant));
    }
    current = it->second.estimator;
    generation = it->second.generation;
  }
  // Stage entirely off the serving path: the checkpoint loader verifies the
  // checksum before parsing a payload byte, rejects config mismatches, and
  // validates every weight shape before committing into the staged
  // estimator. The published snapshot keeps serving throughout.
  auto staged = std::make_shared<core::DaceEstimator>(current->model().config());
  staged->set_name(current->Name());
  staged->set_prediction_cache_capacity(
      current->prediction_cache_stats().capacity);
  if (const Status status = staged->LoadFromFile(path); !status.ok()) {
    SwapFailedCounter()->Add(1);
    observe_duration();
    DACE_LOG(WARN) << "hot swap of tenant '" << std::string(tenant)
                   << "' (generation " << generation << ") from " << path
                   << " rejected: " << status.ToString();
    return status;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_[std::string(tenant)];
    entry.estimator = std::move(staged);
    ++entry.generation;
    generation = entry.generation;
  }
  SwapOkCounter()->Add(1);
  observe_duration();
  DACE_LOG(INFO) << "hot-swapped tenant '" << std::string(tenant)
                 << "' (generation " << generation << ") from " << path;
  return Status::OK();
}

Status ModelRegistry::BeginCanary(std::string_view tenant,
                                  const std::string& path) {
  std::shared_ptr<core::DaceEstimator> current;
  uint64_t base_generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(tenant);
    if (it == entries_.end()) {
      CanaryCounter("stage_failed")->Add(1);
      return Status::NotFound("unknown tenant: " + std::string(tenant));
    }
    if (it->second.canary != nullptr) {
      CanaryCounter("stage_failed")->Add(1);
      return Status::FailedPrecondition(
          "tenant '" + std::string(tenant) + "' already has a canary staged");
    }
    current = it->second.estimator;
    base_generation = it->second.generation;
  }
  // Stage off the lock: the loader verifies checksum, config fingerprint and
  // every weight shape before anything commits into the candidate.
  auto candidate =
      std::make_shared<core::DaceEstimator>(current->model().config());
  candidate->set_name(current->Name());
  candidate->set_prediction_cache_capacity(
      current->prediction_cache_stats().capacity);
  if (const Status status = candidate->LoadFromFile(path); !status.ok()) {
    CanaryCounter("stage_failed")->Add(1);
    DACE_LOG(WARN) << "canary stage for tenant '" << std::string(tenant)
                   << "' (base generation " << base_generation << ") from "
                   << path << " rejected: " << status.ToString();
    return status;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(tenant);
  if (it == entries_.end()) {
    CanaryCounter("stage_failed")->Add(1);
    return Status::NotFound("tenant disappeared during canary staging: " +
                            std::string(tenant));
  }
  if (it->second.canary != nullptr) {
    CanaryCounter("stage_failed")->Add(1);
    return Status::FailedPrecondition(
        "tenant '" + std::string(tenant) +
        "' grew a concurrent canary during staging");
  }
  it->second.canary = std::move(candidate);
  it->second.canary_base_generation = base_generation;
  CanaryCounter("staged")->Add(1);
  DACE_LOG(INFO) << "canary staged for tenant '" << std::string(tenant)
                 << "' against generation " << base_generation << " from "
                 << path;
  return Status::OK();
}

StatusOr<ModelRegistry::Snapshot> ModelRegistry::CanarySnapshot(
    std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(tenant);
  if (it == entries_.end() || it->second.canary == nullptr) {
    return Status::NotFound("no canary staged for tenant: " +
                            std::string(tenant));
  }
  return Snapshot(it->second.canary);
}

Status ModelRegistry::PromoteCanary(std::string_view tenant) {
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(tenant);
    if (it == entries_.end() || it->second.canary == nullptr) {
      return Status::FailedPrecondition("no canary staged for tenant: " +
                                        std::string(tenant));
    }
    Entry& entry = it->second;
    if (entry.generation != entry.canary_base_generation) {
      // A concurrent SwapFromFile/Register republished the tenant: the
      // candidate was validated against weights that no longer serve, so
      // publishing it would silently undo the newer swap. Drop it whole.
      const uint64_t base = entry.canary_base_generation;
      const uint64_t now = entry.generation;
      entry.canary.reset();
      CanaryCounter("aborted")->Add(1);
      DACE_LOG(WARN) << "canary promote for tenant '" << std::string(tenant)
                     << "' aborted: incumbent moved from generation " << base
                     << " to " << now << " during the canary";
      return Status::Aborted(
          "incumbent generation moved during the canary (staged against " +
          std::to_string(base) + ", now " + std::to_string(now) + ")");
    }
    entry.estimator = std::move(entry.canary);
    entry.canary.reset();
    ++entry.generation;
    generation = entry.generation;
  }
  CanaryCounter("promoted")->Add(1);
  DACE_LOG(INFO) << "canary promoted for tenant '" << std::string(tenant)
                 << "' (generation " << generation << ")";
  return Status::OK();
}

Status ModelRegistry::RollbackCanary(std::string_view tenant) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(tenant);
    if (it == entries_.end() || it->second.canary == nullptr) {
      return Status::FailedPrecondition("no canary staged for tenant: " +
                                        std::string(tenant));
    }
    it->second.canary.reset();
  }
  CanaryCounter("rolledback")->Add(1);
  DACE_LOG(INFO) << "canary rolled back for tenant '" << std::string(tenant)
                 << "'; incumbent untouched";
  return Status::OK();
}

bool ModelRegistry::HasCanary(std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(tenant);
  return it != entries_.end() && it->second.canary != nullptr;
}

uint64_t ModelRegistry::Generation(std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(tenant);
  return it == entries_.end() ? 0 : it->second.generation;
}

std::vector<std::string> ModelRegistry::Tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [tenant, entry] : entries_) out.push_back(tenant);
  return out;
}

}  // namespace dace::serve
