#ifndef DACE_SERVE_MODEL_REGISTRY_H_
#define DACE_SERVE_MODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/dace_model.h"
#include "util/status.h"

namespace dace::serve {

// Thread-safe map from tenant key (a database/hardware profile the serving
// layer prices plans for) to the tenant's current estimator snapshot.
//
// Snapshots are immutable-by-contract: once published, an estimator is only
// ever read through const methods (PredictMs / PredictBatchMs), never
// retrained or reloaded in place. Rolling new weights therefore never
// mutates a live model — SwapFromFile stages a FRESH estimator, runs the
// transactional checkpoint loader on it off the serving path (checksum,
// config fingerprint and every weight shape are validated before anything
// commits; the load itself bumps the staged model's weights_version_, so
// its prediction cache can never serve a pre-load value), and only then
// atomically publishes the new shared_ptr. In-flight requests that resolved
// the old snapshot finish on it — the shared_ptr keeps the old weights and
// their still-valid prediction-cache entries alive until the last reader
// drops them.
class ModelRegistry {
 public:
  using Snapshot = std::shared_ptr<const core::DaceEstimator>;

  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Publishes `estimator` as the tenant's current snapshot (upsert: an
  // existing tenant is swapped, which is the pre-built-model analogue of
  // SwapFromFile). The estimator must be trained — an unfitted featurizer
  // is rejected here rather than crashing a drainer thread later.
  Status Register(std::string_view tenant,
                  std::shared_ptr<core::DaceEstimator> estimator);

  // The tenant's current snapshot; kNotFound for unknown tenants.
  StatusOr<Snapshot> Get(std::string_view tenant) const;

  // Hot swap: loads the checkpoint at `path` into a staged estimator built
  // from the current snapshot's config (carrying over its name and
  // prediction-cache capacity), and publishes it only if the load fully
  // validates. On any failure the registry is untouched and the published
  // snapshot keeps serving. Counts serve.swap.ok / serve.swap.failed.
  Status SwapFromFile(std::string_view tenant, const std::string& path);

  // Times the tenant's snapshot has been (re)published: 1 after Register,
  // +1 per successful swap or promoted canary. 0 for unknown tenants.
  uint64_t Generation(std::string_view tenant) const;

  // Registered tenant keys, sorted.
  std::vector<std::string> Tenants() const;

  // ----------------------------------------------------- canary stage ----
  //
  // The adaptation loop's gated publication path. BeginCanary stages a
  // candidate estimator from a checkpoint exactly like SwapFromFile — same
  // transactional loader, same validation — but parks it BESIDE the
  // published snapshot instead of replacing it, remembering the incumbent
  // generation it was staged against. The caller shadow-scores the staged
  // candidate (CanarySnapshot) off the serving path and then either
  // PromoteCanary (publish, +1 generation) or RollbackCanary (drop the
  // candidate; the incumbent was never touched, so its predictions and
  // prediction-cache entries are bit-identical to before the canary).
  //
  // PromoteCanary is generation-guarded: if a concurrent SwapFromFile /
  // Register republished the tenant after BeginCanary, the promote returns
  // kAborted and drops the candidate — the candidate's baseline comparison
  // was against an incumbent that no longer serves, so publishing it would
  // race in stale weights. Counts serve.canary.staged / stage_failed /
  // promoted / rolledback / aborted.

  // Stages the checkpoint at `path` as the tenant's canary candidate.
  // FailedPrecondition if a canary is already staged; load failures (missing
  // file, corrupt checksum, config mismatch) leave the registry untouched.
  Status BeginCanary(std::string_view tenant, const std::string& path);

  // The staged candidate, for shadow-scoring. kNotFound if the tenant has no
  // canary staged. The caller owns the scoring calls: the candidate is not
  // published, so nothing else touches it.
  StatusOr<Snapshot> CanarySnapshot(std::string_view tenant) const;

  // Publishes the staged candidate (+1 generation). kAborted if the
  // incumbent generation moved since BeginCanary (candidate dropped);
  // kFailedPrecondition if no canary is staged.
  Status PromoteCanary(std::string_view tenant);

  // Drops the staged candidate without publishing. kFailedPrecondition if no
  // canary is staged. The incumbent is untouched.
  Status RollbackCanary(std::string_view tenant);

  // True iff the tenant currently has a staged canary candidate.
  bool HasCanary(std::string_view tenant) const;

 private:
  struct Entry {
    std::shared_ptr<core::DaceEstimator> estimator;
    uint64_t generation = 0;
    // Canary stage: candidate staged beside the snapshot, plus the
    // incumbent generation it was validated against.
    std::shared_ptr<core::DaceEstimator> canary;
    uint64_t canary_base_generation = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace dace::serve

#endif  // DACE_SERVE_MODEL_REGISTRY_H_
