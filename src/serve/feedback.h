#ifndef DACE_SERVE_FEEDBACK_H_
#define DACE_SERVE_FEEDBACK_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/drift.h"
#include "obs/metrics.h"
#include "plan/plan.h"
#include "util/status.h"

namespace dace::serve {

// --------------------------------------------------------------- ledger ----

// Lock-free bounded ledger of outstanding predictions awaiting their
// ground-truth latency. The serving hot path pays exactly one
// RecordPrediction per priced plan (~a fetch_add and two stores); the join
// side (ReportActual, driven by the executor's completion callback) does the
// expensive accuracy work off the prediction path.
//
// Layout: a power-of-two ring indexed by request_id & mask. Record claims
// the next id, writes the predicted value into its slot, then publishes the
// id with a release store; Join acquires the id, claims it by CASing in a
// joined bit, reads the value, and seqlock-style re-validates the id
// afterwards (a writer lapping the ring mid-join would have overwritten the
// slot — the join then reports the record evicted instead of returning a
// torn double).
//
// Eviction is age-based on the id stream itself: a record is evicted once
// `capacity` newer predictions have been issued — the ring IS the TTL, in
// prediction ticks rather than wall time, so tests and replays are
// deterministic. A late join (evicted, lapped, or duplicate) returns
// NotFound and is counted by the caller; it never crashes and never blocks.
class FeedbackLedger {
 public:
  // Capacity is rounded up to a power of two; it bounds both memory and the
  // record lifetime (TTL in predictions issued).
  explicit FeedbackLedger(size_t capacity);
  FeedbackLedger(const FeedbackLedger&) = delete;
  FeedbackLedger& operator=(const FeedbackLedger&) = delete;

  // Retains `predicted_ms` and returns the id ground truth must quote back.
  // Wait-free (one fetch_add, two stores). Thread-safe.
  uint64_t RecordPrediction(double predicted_ms);

  // Claims the record and returns its prediction in *predicted_ms. Each id
  // joins at most once; NotFound if the record was evicted (too late), never
  // existed, or was already joined. Lock-free. Thread-safe.
  Status Join(uint64_t request_id, double* predicted_ms);

  size_t capacity() const { return mask_ + 1; }
  // Total predictions recorded (== the next id to be issued).
  uint64_t issued() const { return next_id_.load(std::memory_order_relaxed); }

 private:
  // Slot ids carry the joined flag in the top bit; real ids stay below it
  // (2^63 predictions is ~292 years at 1G predictions/s).
  static constexpr uint64_t kJoinedBit = uint64_t{1} << 63;
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  struct alignas(64) Slot {
    std::atomic<uint64_t> id{kEmpty};
    std::atomic<uint64_t> predicted_bits{0};
  };

  const uint64_t mask_;
  std::atomic<uint64_t> next_id_{0};
  std::unique_ptr<Slot[]> slots_;
};

// ------------------------------------------------------- TenantFeedback ----

struct FeedbackConfig {
  // Ledger ring size == prediction-TTL: an actual reported more than this
  // many predictions after its estimate counts as late.
  size_t ledger_capacity = 1 << 16;
  // Labelled-plan retention: ReportExecuted keeps the most recent
  // `retain_capacity` executed plans (with their measured node times) as the
  // adaptation loop's fine-tune corpus and shadow-scoring slice. 0 disables
  // retention (ReportExecuted still joins and feeds the monitor).
  size_t retain_capacity = 512;
  obs::AccuracyMonitorConfig monitor;
};

// Per-tenant feedback path: the ledger that holds predictions awaiting
// ground truth, plus the accuracy monitor the joined pairs feed. Counts
//   serve.feedback.predictions — RecordPrediction calls (tracked estimates)
//   serve.feedback.joined      — actuals joined to their prediction
//   serve.feedback.late        — actuals that missed the TTL window (or
//                                duplicated / never existed)
// The monitor registers its own accuracy.<tenant>.* / drift.<tenant>.*
// metrics and raises drift alarms (obs/drift.h).
class TenantFeedback {
 public:
  TenantFeedback(const std::string& tenant, const FeedbackConfig& config,
                 obs::MetricsRegistry* registry);
  TenantFeedback(const TenantFeedback&) = delete;
  TenantFeedback& operator=(const TenantFeedback&) = delete;

  // Hot path: retain a prediction, get the id for the eventual actual.
  uint64_t RecordPrediction(double predicted_ms) {
    predictions_->Add(1);
    return ledger_.RecordPrediction(predicted_ms);
  }

  // Ground-truth join: on success feeds (predicted, actual) into the
  // accuracy monitor. NotFound for late/duplicate/unknown ids ("counted,
  // not crashed" — the late counter keeps the books).
  Status ReportActual(uint64_t request_id, double actual_ms);

  // Ground-truth join from a fully-executed plan (the EXPLAIN ANALYZE shape:
  // every node carries its measured actual_time_ms). Joins exactly like
  // ReportActual using the root's actual time, and on a successful join
  // additionally retains a copy of the plan in the bounded ring — the
  // labelled corpus the adaptation loop fine-tunes and shadow-scores on.
  // Counts serve.feedback.retained per retained plan.
  Status ReportExecuted(uint64_t request_id,
                        const plan::QueryPlan& executed_plan);

  // Copy of the retained labelled plans, oldest first. The copy decouples
  // the (possibly long) fine-tune from the serving-path retention writes.
  std::vector<plan::QueryPlan> RetainedPlans() const;
  size_t retained_count() const;

  // Model swapped: rebaseline the drift detectors on the new model.
  void NotifySwap() { monitor_.CaptureReference(); }

  obs::AccuracyMonitor* monitor() { return &monitor_; }
  const FeedbackLedger& ledger() const { return ledger_; }

 private:
  FeedbackLedger ledger_;
  obs::AccuracyMonitor monitor_;
  obs::Counter* predictions_;
  obs::Counter* joined_;
  obs::Counter* late_;
  obs::Counter* retained_total_;

  const size_t retain_capacity_;
  mutable std::mutex retain_mu_;
  std::deque<plan::QueryPlan> retained_;  // bounded by retain_capacity_
};

}  // namespace dace::serve

#endif  // DACE_SERVE_FEEDBACK_H_
