#include "serve/feedback.h"

#include <bit>

#include "util/logging.h"

namespace dace::serve {

// -------------------------------------------------------- FeedbackLedger ----

namespace {

size_t RoundUpPow2(size_t n) {
  if (n < 2) return 2;
  return std::bit_ceil(n);
}

}  // namespace

FeedbackLedger::FeedbackLedger(size_t capacity)
    : mask_(RoundUpPow2(capacity) - 1),
      slots_(new Slot[RoundUpPow2(capacity)]) {}

uint64_t FeedbackLedger::RecordPrediction(double predicted_ms) {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[id & mask_];
  slot.predicted_bits.store(std::bit_cast<uint64_t>(predicted_ms),
                            std::memory_order_relaxed);
  // Release-publish: a joiner that acquires this id also sees the value
  // store above. This plain store is also what laps (evicts) the record
  // `capacity` ids older sharing the slot — no reclamation step needed.
  slot.id.store(id, std::memory_order_release);
  return id;
}

Status FeedbackLedger::Join(uint64_t request_id, double* predicted_ms) {
  if (request_id & kJoinedBit) {
    return Status::InvalidArgument("request id out of range");
  }
  const uint64_t issued_now = next_id_.load(std::memory_order_relaxed);
  if (request_id >= issued_now) {
    return Status::NotFound("request id was never issued");
  }
  if (issued_now - request_id > mask_) {
    return Status::NotFound("prediction record evicted (actual arrived late)");
  }
  Slot& slot = slots_[request_id & mask_];
  uint64_t cur = slot.id.load(std::memory_order_acquire);
  if (cur != request_id) {
    // Lapped by a newer prediction, or already joined (id | kJoinedBit).
    return Status::NotFound(cur == (request_id | kJoinedBit)
                                ? "prediction already joined"
                                : "prediction record evicted (slot reused)");
  }
  // Claim: exactly one joiner wins the CAS; a concurrent duplicate loses and
  // reads the joined bit above on retry.
  if (!slot.id.compare_exchange_strong(cur, request_id | kJoinedBit,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
    return Status::NotFound("prediction already joined");
  }
  const double value =
      std::bit_cast<double>(slot.predicted_bits.load(std::memory_order_relaxed));
  // Seqlock-style validation: a writer lapping the ring between our claim
  // and the value load would have overwritten both fields (writers store
  // unconditionally). If the id no longer carries our claim, the value may
  // be torn — report eviction rather than returning it.
  if (slot.id.load(std::memory_order_acquire) != (request_id | kJoinedBit)) {
    return Status::NotFound("prediction record evicted during join");
  }
  *predicted_ms = value;
  return Status::OK();
}

// -------------------------------------------------------- TenantFeedback ----

TenantFeedback::TenantFeedback(const std::string& tenant,
                               const FeedbackConfig& config,
                               obs::MetricsRegistry* registry)
    : ledger_(config.ledger_capacity),
      monitor_(tenant, config.monitor, registry),
      predictions_(registry->GetCounter("serve.feedback.predictions")),
      joined_(registry->GetCounter("serve.feedback.joined")),
      late_(registry->GetCounter("serve.feedback.late")),
      retained_total_(registry->GetCounter("serve.feedback.retained")),
      retain_capacity_(config.retain_capacity) {}

Status TenantFeedback::ReportActual(uint64_t request_id, double actual_ms) {
  double predicted_ms = 0.0;
  const Status status = ledger_.Join(request_id, &predicted_ms);
  if (!status.ok()) {
    if (status.code() == StatusCode::kNotFound) late_->Add(1);
    return status;
  }
  joined_->Add(1);
  monitor_.ObserveQError(predicted_ms, actual_ms);
  return Status::OK();
}

Status TenantFeedback::ReportExecuted(uint64_t request_id,
                                      const plan::QueryPlan& executed_plan) {
  if (executed_plan.root() < 0) {
    return Status::InvalidArgument("executed plan has no root");
  }
  const double actual_ms = executed_plan.node(executed_plan.root()).actual_time_ms;
  DACE_RETURN_IF_ERROR(ReportActual(request_id, actual_ms));
  // Retention rides on a successful join only: a late or duplicate actual
  // must not enter the fine-tune corpus twice.
  if (retain_capacity_ == 0) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(retain_mu_);
    if (retained_.size() == retain_capacity_) retained_.pop_front();
    retained_.push_back(executed_plan);
  }
  retained_total_->Add(1);
  return Status::OK();
}

std::vector<plan::QueryPlan> TenantFeedback::RetainedPlans() const {
  std::lock_guard<std::mutex> lock(retain_mu_);
  return std::vector<plan::QueryPlan>(retained_.begin(), retained_.end());
}

size_t TenantFeedback::retained_count() const {
  std::lock_guard<std::mutex> lock(retain_mu_);
  return retained_.size();
}

}  // namespace dace::serve
