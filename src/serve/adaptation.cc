#include "serve/adaptation.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"

namespace dace::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since)
      .count();
}

// Handles into the process-wide registry, resolved once. The exact
// accounting identities (triggered == skipped + finetunes; finetunes ==
// promoted + rolledback + aborted) are part of the public contract — the
// stress test reconciles these counters to the job ledger it drove.
struct AdaptMetrics {
  obs::Counter* triggered;
  obs::Counter* dropped;
  obs::Counter* skipped;
  obs::Counter* finetunes;
  obs::Counter* promoted;
  obs::Counter* rolledback;
  obs::Counter* aborted;
  obs::Histogram* finetune_us;
  obs::Histogram* cycle_us;
};

AdaptMetrics* Metrics() {
  static AdaptMetrics* metrics = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    auto* m = new AdaptMetrics();
    m->triggered = r->GetCounter("serve.adapt.triggered");
    m->dropped = r->GetCounter("serve.adapt.dropped");
    m->skipped = r->GetCounter("serve.adapt.skipped");
    m->finetunes = r->GetCounter("serve.adapt.finetunes");
    m->promoted = r->GetCounter("serve.adapt.promoted");
    m->rolledback = r->GetCounter("serve.adapt.rolledback");
    m->aborted = r->GetCounter("serve.adapt.aborted");
    m->finetune_us =
        r->GetHistogram("serve.adapt.finetune_us", obs::LatencyBucketsUs());
    m->cycle_us =
        r->GetHistogram("serve.adapt.cycle_us", obs::LatencyBucketsUs());
    return m;
  }();
  return metrics;
}

// Median q-error of `estimator` over the labelled holdout. The estimator
// must be privately owned by the caller (PredictBatchMs shares scratch) —
// the controller only ever scores its own clone or the unpublished canary.
double MedianQError(const core::DaceEstimator& estimator,
                    std::span<const plan::QueryPlan> holdout) {
  if (holdout.empty()) return 0.0;
  const std::vector<double> predicted = estimator.PredictBatchMs(holdout);
  std::vector<double> q;
  q.reserve(holdout.size());
  for (size_t i = 0; i < holdout.size(); ++i) {
    const double actual =
        std::max(holdout[i].node(holdout[i].root()).actual_time_ms, 1e-6);
    const double pred = std::max(predicted[i], 1e-6);
    q.push_back(std::max(pred / actual, actual / pred));
  }
  const size_t mid = q.size() / 2;
  std::nth_element(q.begin(), q.begin() + static_cast<ptrdiff_t>(mid), q.end());
  return q[mid];
}

// Deterministic per-cycle fine-tune seed: a pure function of the configured
// base seed, the tenant key and the incumbent generation the cycle adapts.
uint64_t DeriveSeed(uint64_t base, std::string_view tenant,
                    uint64_t generation) {
  uint64_t h = base;
  for (const char c : tenant) {
    h = HashCombine(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  return HashCombine(h, generation);
}

}  // namespace

AdaptationController::AdaptationController(ModelRegistry* registry,
                                           EstimatorService* service,
                                           const AdaptationConfig& config)
    : registry_(registry), service_(service), config_(config) {
  DACE_CHECK(registry != nullptr);
  DACE_CHECK(service != nullptr);
  DACE_CHECK(!config.checkpoint_dir.empty())
      << "AdaptationConfig.checkpoint_dir is required (anchor + candidate "
         "checkpoints live there)";
  DACE_CHECK(config.queue_capacity >= 1);
  DACE_CHECK(config.holdout_plans >= 1);
  worker_ = std::thread([this] { WorkerLoop(); });
}

AdaptationController::~AdaptationController() {
  Shutdown();
  worker_.join();
}

Status AdaptationController::Watch(std::string_view tenant) {
  if (registry_->Generation(tenant) == 0) {
    return Status::NotFound("unknown tenant: " + std::string(tenant));
  }
  obs::AccuracyMonitor* monitor = service_->EnsureMonitor(tenant);
  // The monitor copies callbacks under its lock but INVOKES them outside it
  // (pinned by serve_adaptation_test), so this enqueue can never deadlock
  // against the ObserveQError path that raised the alarm.
  monitor->AddAlarmCallback(
      [this, key = std::string(tenant)](const obs::Alarm&) {
        TriggerAdaptation(key);
      });
  return Status::OK();
}

bool AdaptationController::TriggerAdaptation(std::string_view tenant) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const bool duplicate =
        running_ == tenant ||
        std::find(queue_.begin(), queue_.end(), tenant) != queue_.end();
    if (stop_ || duplicate || queue_.size() >= config_.queue_capacity) {
      Metrics()->dropped->Add(1);
      return false;
    }
    queue_.emplace_back(tenant);
    Metrics()->triggered->Add(1);
  }
  SetState(std::string(tenant), State::kDrifted);
  work_cv_.notify_one();
  return true;
}

void AdaptationController::Quiesce() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_.empty(); });
}

void AdaptationController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
}

AdaptationController::State AdaptationController::state(
    std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = states_.find(tenant);
  return it == states_.end() ? State::kStable : it->second;
}

uint64_t AdaptationController::cycles_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cycles_completed_;
}

void AdaptationController::SetState(const std::string& tenant, State state) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    states_[tenant] = state;
  }
  obs::MetricsRegistry::Default()
      ->GetGauge("serve.adapt." + tenant + ".state")
      ->Set(static_cast<double>(state));
}

void AdaptationController::Hook(std::string_view stage,
                                const std::string& path) {
  if (config_.stage_hook) config_.stage_hook(stage, path);
}

void AdaptationController::WorkerLoop() {
  for (;;) {
    std::string tenant;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) {
        // Queued-but-unstarted jobs resolve as skipped so the triggered
        // identity still reconciles after a shutdown race.
        while (!queue_.empty()) {
          queue_.pop_front();
          Metrics()->skipped->Add(1);
          ++cycles_completed_;
        }
        idle_cv_.notify_all();
        return;
      }
      tenant = std::move(queue_.front());
      queue_.pop_front();
      running_ = tenant;
    }
    RunCycle(tenant);
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_.clear();
      ++cycles_completed_;
    }
    idle_cv_.notify_all();
  }
}

void AdaptationController::RunCycle(const std::string& tenant) {
  DACE_TRACE_SPAN("serve.adapt.cycle");
  AdaptMetrics* m = Metrics();
  const Clock::time_point cycle_t0 = Clock::now();
  const auto finish = [&](State state) {
    SetState(tenant, state);
    m->cycle_us->Observe(ElapsedUs(cycle_t0));
  };
  Hook("cycle.begin", "");

  // Harvest. The copy decouples the (long) fine-tune from serving-path
  // retention writes; the holdout is the most RECENT slice — live traffic
  // closest to the drifted distribution the candidate must win on.
  const std::vector<plan::QueryPlan> retained = service_->RetainedPlans(tenant);
  if (retained.size() < config_.min_finetune_plans ||
      retained.size() <= config_.holdout_plans) {
    DACE_LOG(INFO) << "adaptation cycle for tenant '" << tenant
                   << "' skipped: " << retained.size()
                   << " labelled plans retained, need "
                   << std::max(config_.min_finetune_plans,
                               config_.holdout_plans + 1);
    m->skipped->Add(1);
    finish(State::kStable);
    return;
  }
  auto snapshot_or = registry_->Get(tenant);
  if (!snapshot_or.ok()) {
    m->skipped->Add(1);
    finish(State::kStable);
    return;
  }
  const ModelRegistry::Snapshot incumbent = *std::move(snapshot_or);
  const uint64_t generation = registry_->Generation(tenant);
  const uint64_t seed =
      DeriveSeed(config_.finetune_seed, tenant, generation);
  const std::span<const plan::QueryPlan> holdout(
      retained.data() + (retained.size() - config_.holdout_plans),
      config_.holdout_plans);
  const std::vector<plan::QueryPlan> corpus(
      retained.begin(),
      retained.end() - static_cast<ptrdiff_t>(config_.holdout_plans));

  SetState(tenant, State::kFineTuning);

  // Clone-and-finetune: the clone is bit-identical to the incumbent (same
  // checkpoint image) with its own scratch and caches, so both the baseline
  // scoring and the fine-tune run fully off the serving path — the published
  // snapshot is never touched.
  std::unique_ptr<core::DaceEstimator> candidate = incumbent->Clone();

  // Anchor: the exact incumbent weights, lineage-tagged — the versioned
  // artifact a rollback (or an operator) restores bit-for-bit.
  const std::string stem = config_.checkpoint_dir + "/" + tenant + "-g" +
                           std::to_string(generation);
  const std::string anchor_path = stem + "-anchor.ckpt";
  candidate->set_lineage(StrFormat("anchor tenant=%s gen=%llu", tenant.c_str(),
                                   static_cast<unsigned long long>(generation)));
  if (const Status s = candidate->SaveToFile(anchor_path); !s.ok()) {
    DACE_LOG(WARN) << "adaptation cycle for tenant '" << tenant
                   << "' skipped: anchor checkpoint failed: " << s.ToString();
    m->skipped->Add(1);
    finish(State::kStable);
    return;
  }
  const double incumbent_q = MedianQError(*candidate, holdout);

  Hook("finetune.before", anchor_path);
  m->finetunes->Add(1);
  const Clock::time_point ft_t0 = Clock::now();
  candidate->FineTune(corpus, seed);
  m->finetune_us->Observe(ElapsedUs(ft_t0));

  const std::string candidate_path = stem + "-candidate.ckpt";
  candidate->set_lineage(
      StrFormat("candidate tenant=%s parent_gen=%llu seed=%llu",
                tenant.c_str(), static_cast<unsigned long long>(generation),
                static_cast<unsigned long long>(seed)));
  if (const Status s = candidate->SaveToFile(candidate_path); !s.ok()) {
    DACE_LOG(WARN) << "adaptation cycle for tenant '" << tenant
                   << "' aborted: candidate checkpoint failed: "
                   << s.ToString();
    m->aborted->Add(1);
    finish(State::kStable);
    return;
  }

  // Canary: everything from here on goes through the registry's gated
  // publication path, against the staged ARTIFACT — what would actually
  // serve — not the in-memory clone.
  SetState(tenant, State::kCanary);
  Hook("canary.before_stage", candidate_path);
  if (const Status s = registry_->BeginCanary(tenant, candidate_path);
      !s.ok()) {
    DACE_LOG(WARN) << "adaptation cycle for tenant '" << tenant
                   << "' aborted at canary staging: " << s.ToString();
    m->aborted->Add(1);
    // Acknowledge the alarm: the detectors keep watching the incumbent, but
    // from a fresh baseline instead of instantly re-firing on the same
    // drifted window.
    if (obs::AccuracyMonitor* monitor = service_->Monitor(tenant)) {
      monitor->CaptureReference();
    }
    finish(State::kStable);
    return;
  }
  auto canary_or = registry_->CanarySnapshot(tenant);
  DACE_CHECK(canary_or.ok());  // staged above, nothing else drops it
  const double candidate_q = MedianQError(**canary_or, holdout);

  const bool accept = candidate_q <= config_.accept_margin * incumbent_q;
  DACE_LOG(INFO) << "canary gate for tenant '" << tenant
                 << "': incumbent median q-error " << incumbent_q
                 << ", candidate " << candidate_q << " (margin "
                 << config_.accept_margin << ") -> "
                 << (accept ? "promote" : "rollback");
  Hook("canary.before_promote", candidate_path);
  if (!accept) {
    const Status s = registry_->RollbackCanary(tenant);
    DACE_CHECK(s.ok()) << s.ToString();
    m->rolledback->Add(1);
    if (obs::AccuracyMonitor* monitor = service_->Monitor(tenant)) {
      monitor->CaptureReference();
    }
    finish(State::kRolledBack);
    return;
  }
  if (const Status s = registry_->PromoteCanary(tenant); !s.ok()) {
    // Lost the publication race (a concurrent SwapFromFile republished the
    // tenant): the registry already dropped the candidate; the newer swap's
    // owner is responsible for its own NotifySwap.
    DACE_LOG(WARN) << "adaptation cycle for tenant '" << tenant
                   << "' aborted at promote: " << s.ToString();
    m->aborted->Add(1);
    if (obs::AccuracyMonitor* monitor = service_->Monitor(tenant)) {
      monitor->CaptureReference();
    }
    finish(State::kStable);
    return;
  }
  m->promoted->Add(1);
  // Rebaseline the drift detectors on the promoted model: its q-error
  // distribution is the new normal.
  service_->NotifySwap(tenant);
  finish(State::kPromoted);
}

}  // namespace dace::serve
