#ifndef DACE_SERVE_SERVICE_H_
#define DACE_SERVE_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "plan/plan.h"
#include "serve/feedback.h"
#include "serve/model_registry.h"
#include "util/status.h"

namespace dace::serve {

// Tunables of the coalescing scheduler. The defaults favour latency on an
// idle service (a lone request waits at most max_wait_us) while letting a
// loaded service amortize the transformer forward across max_batch plans.
struct ServiceConfig {
  // Micro-batch flush triggers: a tenant's batch dispatches as soon as
  // max_batch requests are pending, or as soon as the oldest pending request
  // has waited max_wait_us microseconds, whichever comes first.
  size_t max_batch = 64;
  int64_t max_wait_us = 200;
  // Admission bound per tenant: Estimate returns kUnavailable (backpressure)
  // when this many requests are already queued, so overload degrades into
  // fast typed rejections instead of unbounded queueing.
  size_t queue_capacity = 1024;
  // Ground-truth feedback path (ledger size / TTL, drift-detector tuning)
  // used by EstimateTracked / ReportActual.
  FeedbackConfig feedback;
};

// An estimate whose prediction is retained for a later ground-truth join:
// quote request_id back to ReportActual once the plan's actual latency is
// known.
struct TrackedEstimate {
  uint64_t request_id = 0;
  double ms = 0.0;
};

// Thread-safe multi-tenant front end over the estimator stack — the piece
// that turns "every caller owns a DaceEstimator" into a service. Concurrent
// single-plan Estimate calls enqueue into a bounded per-tenant admission
// queue; a per-tenant drainer coalesces them into micro-batches and prices
// each batch with one PredictBatchMs call (which fans out across the
// process thread pool), so DACE's batched-inference property pays off
// across callers, not just within one caller's batch.
//
// Results are bit-identical to direct PredictMs / PredictBatchMs calls on
// the snapshot: coalescing only changes who computes, never what is
// computed (serve_differential_test.cc holds this under both kernel ISAs,
// cache on and off).
//
// Error taxonomy (every request resolves to exactly one):
//   OK                 — priced; the double is the estimator's prediction.
//   kNotFound          — unknown tenant (refused before admission).
//   kUnavailable       — backpressure: admission queue full, or the service
//                        is shut down. Safe to retry later.
//   kDeadlineExceeded  — the request's deadline elapsed before dispatch,
//                        while queued, or before its batch completed.
//
// Observability: serve.requests / serve.ok / serve.admission.rejected /
// serve.deadline.missed counters reconcile exactly (every admitted request
// increments serve.requests and exactly one outcome counter), plus
// serve.batches, serve.batch.size and serve.batch.latency_us /
// serve.request.latency_us histograms, a serve.queue.depth.high_water
// gauge, and a DACE_TRACE_SPAN("serve.batch") per dispatched batch.
//
// Hot swap: each batch resolves the tenant's snapshot at dispatch time, so
// a ModelRegistry::SwapFromFile takes effect on the next batch; batches
// already executing finish on the old snapshot, whose shared_ptr keeps its
// weights and prediction cache alive and valid.
class EstimatorService {
 public:
  explicit EstimatorService(ModelRegistry* registry,
                            const ServiceConfig& config = ServiceConfig());
  ~EstimatorService();  // Shutdown() and joins every drainer.

  EstimatorService(const EstimatorService&) = delete;
  EstimatorService& operator=(const EstimatorService&) = delete;

  // Predicted runtime of `plan` in milliseconds, via the tenant's coalesced
  // batch path. Blocks until the request resolves (at most roughly
  // max_wait_us + one batch execution, or the deadline). deadline_us is a
  // per-request budget relative to the call; <= 0 means no deadline.
  StatusOr<double> Estimate(std::string_view tenant,
                            const plan::QueryPlan& plan,
                            int64_t deadline_us = 0);

  // Estimate, plus the accuracy-observability feedback loop: the prediction
  // is retained in the tenant's feedback ledger and the returned request_id
  // joins it to ground truth via ReportActual. The retention cost on top of
  // Estimate is one wait-free ledger write (~tens of ns), bounded memory.
  StatusOr<TrackedEstimate> EstimateTracked(std::string_view tenant,
                                            const plan::QueryPlan& plan,
                                            int64_t deadline_us = 0);

  // Ground-truth feedback: joins the measured latency of the plan behind
  // `request_id` (from EstimateTracked) to its retained prediction, feeding
  // the tenant's rolling q-error metrics and drift detectors (obs/drift.h).
  // Call it from the executor's completion context — it is off the
  // prediction path and never blocks serving. kNotFound if the tenant has
  // no tracked estimates or the record's TTL elapsed (late actuals are
  // counted in serve.feedback.late, never an error to retry).
  Status ReportActual(std::string_view tenant, uint64_t request_id,
                      double actual_ms);

  // Ground-truth feedback from a fully-executed plan (the EXPLAIN ANALYZE
  // shape: every node carries its measured actual_time_ms). Joins exactly
  // like ReportActual using the root's actual time, and on a successful join
  // retains a copy of the plan in the tenant's bounded labelled-plan ring —
  // the corpus the adaptation loop fine-tunes and shadow-scores on.
  Status ReportExecuted(std::string_view tenant, uint64_t request_id,
                        const plan::QueryPlan& executed_plan);

  // Copy of the tenant's retained labelled plans, oldest first (empty if the
  // tenant has no feedback path yet).
  std::vector<plan::QueryPlan> RetainedPlans(std::string_view tenant);

  // Tells the tenant's drift detectors the model was swapped: the live
  // q-error window becomes the new KS reference and the detectors restart
  // (the new model deserves a fresh baseline). No-op for tenants without a
  // feedback path yet.
  void NotifySwap(std::string_view tenant);

  // The tenant's accuracy monitor (alarm history, callbacks), or nullptr if
  // no EstimateTracked / ReportActual ever ran for the tenant.
  obs::AccuracyMonitor* Monitor(std::string_view tenant);

  // Like Monitor, but creates the tenant's feedback path if it does not
  // exist yet — so the adaptation controller can subscribe its drift-alarm
  // callback before the first tracked estimate ever runs. Never nullptr.
  obs::AccuracyMonitor* EnsureMonitor(std::string_view tenant);

  // Stops admitting new requests (they get kUnavailable); already-admitted
  // requests are drained to completion. Idempotent; the destructor calls it.
  void Shutdown();

  const ServiceConfig& config() const { return config_; }

 private:
  struct Request;
  class TenantQueue;

  // The tenant's feedback path, created on first use (decoupled from
  // TenantQueue: feedback outlives queue shutdown, and ReportActual must
  // work after Shutdown() drained the queues).
  TenantFeedback* GetFeedback(std::string_view tenant);
  TenantFeedback* FindFeedback(std::string_view tenant);

  ModelRegistry* const registry_;
  const ServiceConfig config_;
  std::mutex mu_;  // guards queues_ / shutdown_
  bool shutdown_ = false;
  std::map<std::string, std::unique_ptr<TenantQueue>, std::less<>> queues_;
  std::mutex feedback_mu_;  // guards feedback_ (map only; entries are
                            // internally synchronized)
  std::map<std::string, std::unique_ptr<TenantFeedback>, std::less<>>
      feedback_;
};

}  // namespace dace::serve

#endif  // DACE_SERVE_SERVICE_H_
