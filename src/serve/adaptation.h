#ifndef DACE_SERVE_ADAPTATION_H_
#define DACE_SERVE_ADAPTATION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/model_registry.h"
#include "serve/service.h"
#include "util/status.h"

namespace dace::serve {

// Tunables of the closed adaptation loop (DESIGN.md §17).
struct AdaptationConfig {
  // Directory the loop writes its versioned artifacts into: per cycle an
  // anchor checkpoint of the incumbent (the exact rollback target) and the
  // fine-tuned candidate checkpoint the canary stages from. Required.
  std::string checkpoint_dir;

  // A cycle is skipped (serve.adapt.skipped) unless at least this many
  // labelled plans are retained — fine-tuning on a handful of joins would
  // overfit the adapters to noise.
  size_t min_finetune_plans = 32;

  // The most recent `holdout_plans` retained plans are withheld from the
  // fine-tune corpus and used to shadow-score incumbent vs candidate — a
  // slice of live traffic the candidate never trained on.
  size_t holdout_plans = 16;

  // Acceptance gate: the candidate is promoted iff its holdout median
  // q-error <= accept_margin × the incumbent's. < 1 demands strict
  // improvement with a safety margin; a regressing candidate always rolls
  // back.
  double accept_margin = 0.95;

  // Base RNG seed for background fine-tunes. The per-cycle seed is derived
  // from (this, tenant, incumbent generation), so a cycle is bit-reproducible
  // — rerunning the same cycle against the same weights and corpus yields a
  // bit-identical candidate at any thread count — while distinct cycles
  // explore distinct adapter initializations.
  uint64_t finetune_seed = 0xDACE5EED;

  // Pending-job slots. Alarms landing while the queue is full (or while the
  // tenant already has a cycle queued or running) are dropped and counted
  // (serve.adapt.dropped) — drift alarms are level signals, not a work list.
  size_t queue_capacity = 2;

  // Test-only fault-injection hook, invoked synchronously on the worker
  // thread at named stages ("cycle.begin", "finetune.before",
  // "canary.before_stage", "canary.before_promote") with the artifact path
  // relevant to the stage (empty when none). Production leaves it unset.
  std::function<void(std::string_view stage, const std::string& path)>
      stage_hook;
};

// Closed loop turning PR-9 drift alarms into safely-published fine-tunes:
//
//   Stable --alarm--> Drifted --enough labelled plans--> FineTuning
//     FineTuning: clone the incumbent snapshot, score the clone on the
//       holdout slice (incumbent baseline — the clone is bit-identical, so
//       this never touches the serving estimator's scratch), LoRA-fine-tune
//       the clone on the retained corpus with the derived seed, write the
//       lineage-tagged anchor + candidate checkpoints.
//     Canary: stage the candidate checkpoint beside the incumbent
//       (ModelRegistry::BeginCanary), shadow-score the STAGED artifact on
//       the holdout, then gate:
//         accepted  -> PromoteCanary (generation-guarded; a raced swap
//                      aborts) -> NotifySwap rebaselines the drift
//                      detectors -> Promoted
//         rejected  -> RollbackCanary (incumbent bit-identical, its
//                      prediction cache intact) + CaptureReference to
//                      acknowledge the alarm -> RolledBack
//   and back to Stable either way.
//
// All of it runs on ONE background worker thread, off the serving path: the
// serving snapshot is only ever read through the registry, never mutated.
//
// serve.adapt.* accounting (exact, asserted by the stress test):
//   triggered  == skipped + finetunes            (every job resolves once)
//   finetunes  == promoted + rolledback + aborted (every fine-tune resolves)
//   dropped counts alarms/triggers that never became jobs (full queue or
//   dedupe) and participates in no other identity.
// Plus serve.adapt.finetune_us / serve.adapt.cycle_us histograms and a
// per-tenant serve.adapt.<tenant>.state gauge holding the State enum value.
class AdaptationController {
 public:
  enum class State {
    kStable = 0,
    kDrifted = 1,
    kFineTuning = 2,
    kCanary = 3,
    kPromoted = 4,
    kRolledBack = 5,
  };

  AdaptationController(ModelRegistry* registry, EstimatorService* service,
                       const AdaptationConfig& config);
  ~AdaptationController();  // Shutdown() and joins the worker.

  AdaptationController(const AdaptationController&) = delete;
  AdaptationController& operator=(const AdaptationController&) = delete;

  // Subscribes the controller to the tenant's drift alarms (creating the
  // tenant's feedback path if needed): every alarm becomes a
  // TriggerAdaptation. The monitor invokes callbacks outside its lock, so
  // the enqueue never deadlocks against the observation path.
  Status Watch(std::string_view tenant);

  // Enqueues an adaptation cycle for the tenant. Returns true if enqueued
  // (serve.adapt.triggered); false if dropped because the queue is full or
  // the tenant already has a cycle queued/running (serve.adapt.dropped).
  bool TriggerAdaptation(std::string_view tenant);

  // Blocks until every queued job has fully resolved and the worker is
  // idle. Does not stop the controller — new triggers keep working.
  void Quiesce();

  // Stops the worker: queued-but-unstarted jobs are abandoned (their
  // `triggered` remains; they resolve as skipped), the running job finishes.
  // Idempotent; the destructor calls it.
  void Shutdown();

  // The tenant's current lifecycle state (kStable if never adapted).
  State state(std::string_view tenant) const;

  // Completed cycles (jobs fully resolved), for test synchronization.
  uint64_t cycles_completed() const;

 private:
  void WorkerLoop();
  void RunCycle(const std::string& tenant);
  void SetState(const std::string& tenant, State state);
  void Hook(std::string_view stage, const std::string& path);

  ModelRegistry* const registry_;
  EstimatorService* const service_;
  const AdaptationConfig config_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // worker waits for jobs / stop
  std::condition_variable idle_cv_;   // Quiesce waits for drain
  std::deque<std::string> queue_;     // pending tenants (deduped)
  std::string running_;               // tenant of the in-flight cycle
  bool stop_ = false;
  uint64_t cycles_completed_ = 0;
  std::map<std::string, State, std::less<>> states_;
  std::thread worker_;
};

}  // namespace dace::serve

#endif  // DACE_SERVE_ADAPTATION_H_
