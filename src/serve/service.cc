#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/strings.h"

namespace dace::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since)
      .count();
}

// Handles into the process-wide registry, resolved once. All accounting for
// one request happens in TenantQueue::Submit, so by construction
//   serve.ok + serve.admission.rejected + serve.deadline.missed
//     == serve.requests
// once callers are quiescent — the reconciliation the soak test asserts.
struct ServeMetrics {
  obs::Counter* issued;
  obs::Counter* ok;
  obs::Counter* rejected;
  obs::Counter* deadline_missed;
  obs::Counter* batches;
  obs::Histogram* batch_size;
  obs::Histogram* batch_us;
  obs::Histogram* request_us;
  obs::Gauge* queue_depth_hw;
};

ServeMetrics* Metrics() {
  static ServeMetrics* metrics = [] {
    static const double kBatchSizeBounds[] = {1,  2,  4,   8,   16,  32,
                                              64, 128, 256, 512, 1024};
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    auto* m = new ServeMetrics();
    m->issued = r->GetCounter("serve.requests");
    m->ok = r->GetCounter("serve.ok");
    m->rejected = r->GetCounter("serve.admission.rejected");
    m->deadline_missed = r->GetCounter("serve.deadline.missed");
    m->batches = r->GetCounter("serve.batches");
    m->batch_size = r->GetHistogram("serve.batch.size", kBatchSizeBounds);
    m->batch_us =
        r->GetHistogram("serve.batch.latency_us", obs::LatencyBucketsUs());
    m->request_us =
        r->GetHistogram("serve.request.latency_us", obs::LatencyBucketsUs());
    m->queue_depth_hw = r->GetGauge("serve.queue.depth.high_water");
    return m;
  }();
  return metrics;
}

}  // namespace

// One in-flight request. Lives on the submitting caller's stack: the caller
// never returns from Submit until `done` (or until it removed itself from
// the pending queue under the lock), so the drainer's pointer is always
// valid. `claimed`/`done` are only written under the queue mutex.
struct EstimatorService::Request {
  const plan::QueryPlan* plan = nullptr;
  Clock::time_point deadline{};
  bool has_deadline = false;
  bool claimed = false;  // owned by a drainer batch; a result is coming
  bool done = false;
  double ms = 0.0;
  Status status;
};

// Bounded admission queue + coalescing drainer for one tenant. The drainer
// thread claims micro-batches (flush on max-batch or max-wait) and prices
// each with a single PredictBatchMs call on the tenant's current snapshot;
// that call fans the batch out across the process thread pool. Serializing
// batches per tenant is also what makes PredictBatchMs safe here — the
// estimator's batch scratch is per-estimator, and exactly one drainer
// touches a tenant's snapshot at a time (snapshots retired by a hot swap
// finish their last batch on the old object, which the new drainer batches
// never touch).
class EstimatorService::TenantQueue {
 public:
  TenantQueue(std::string tenant, ModelRegistry* registry,
              const ServiceConfig& config)
      : tenant_(std::move(tenant)), registry_(registry), config_(config) {
    drainer_ = std::thread([this] { DrainLoop(); });
  }

  ~TenantQueue() {
    Shutdown();
    drainer_.join();
  }

  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    drain_cv_.notify_all();
    client_cv_.notify_all();
  }

  StatusOr<double> Submit(const plan::QueryPlan& plan, int64_t deadline_us) {
    ServeMetrics* m = Metrics();
    m->issued->Add(1);
    const Clock::time_point start = Clock::now();
    Request req;
    req.plan = &plan;
    req.has_deadline = deadline_us > 0;
    if (req.has_deadline) {
      req.deadline = start + std::chrono::microseconds(deadline_us);
    }
    const Status outcome = EnqueueAndWait(&req, start);
    if (outcome.ok()) {
      m->ok->Add(1);
      m->request_us->Observe(ElapsedUs(start));
      return req.ms;
    }
    if (outcome.code() == StatusCode::kDeadlineExceeded) {
      m->deadline_missed->Add(1);
    } else {
      m->rejected->Add(1);
    }
    return outcome;
  }

 private:
  Status EnqueueAndWait(Request* req, Clock::time_point start) {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return Status::Unavailable("service is shut down");
    if (pending_.size() >= config_.queue_capacity) {
      return Status::Unavailable(StrFormat(
          "tenant '%s' admission queue full (%zu pending)", tenant_.c_str(),
          pending_.size()));
    }
    if (req->has_deadline && Clock::now() >= req->deadline) {
      return Status::DeadlineExceeded("deadline expired before admission");
    }
    if (pending_.empty()) window_open_ = start;
    pending_.push_back(req);
    Metrics()->queue_depth_hw->SetMax(static_cast<double>(pending_.size()));
    drain_cv_.notify_one();

    while (!req->done) {
      if (req->has_deadline && !req->claimed) {
        client_cv_.wait_until(lock, req->deadline);
        if (!req->done && !req->claimed && Clock::now() >= req->deadline) {
          // Still queued: abandon the slot. The drainer can no longer reach
          // this request, so returning (and unwinding the stack slot) is
          // safe.
          pending_.erase(std::find(pending_.begin(), pending_.end(), req));
          return Status::DeadlineExceeded(
              "deadline expired before batch dispatch");
        }
      } else {
        client_cv_.wait(lock);
      }
    }
    if (!req->status.ok()) return req->status;
    if (req->has_deadline && Clock::now() > req->deadline) {
      return Status::DeadlineExceeded("batch completed after the deadline");
    }
    return Status::OK();
  }

  void DrainLoop() {
    for (;;) {
      std::vector<Request*> batch;
      {
        std::unique_lock<std::mutex> lock(mu_);
        drain_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
        if (pending_.empty()) {
          if (stop_) return;  // shut down with nothing left to drain
          continue;
        }
        // Coalescing window: dispatch when the batch is full or the oldest
        // pending request has waited max_wait_us (immediately on shutdown —
        // admitted requests still complete).
        const Clock::time_point flush_at =
            window_open_ + std::chrono::microseconds(config_.max_wait_us);
        while (!stop_ && pending_.size() < config_.max_batch &&
               Clock::now() < flush_at) {
          drain_cv_.wait_until(lock, flush_at);
        }
        const size_t n = std::min(pending_.size(), config_.max_batch);
        const auto split = pending_.begin() + static_cast<ptrdiff_t>(n);
        batch.assign(pending_.begin(), split);
        pending_.erase(pending_.begin(), split);
        // Requests left behind by a full batch open a fresh window.
        if (!pending_.empty()) window_open_ = Clock::now();
        const Clock::time_point now = Clock::now();
        size_t live = 0;
        for (Request* r : batch) {
          r->claimed = true;
          if (r->has_deadline && now >= r->deadline) {
            // Expired while queued: fail it now instead of spending forward-
            // pass work on a result the caller already gave up on.
            r->status =
                Status::DeadlineExceeded("deadline expired while queued");
            r->done = true;
          } else {
            batch[live++] = r;
          }
        }
        if (live < batch.size()) {
          batch.resize(live);
          client_cv_.notify_all();
        }
      }
      ExecuteBatch(std::move(batch));
    }
  }

  void ExecuteBatch(std::vector<Request*> batch) {
    if (batch.empty()) return;
    ServeMetrics* m = Metrics();
    Status failure;
    std::vector<double> results;
    auto snapshot_or = registry_->Get(tenant_);
    if (!snapshot_or.ok()) {
      failure = snapshot_or.status();
    } else {
      const ModelRegistry::Snapshot snapshot = *std::move(snapshot_or);
      std::vector<const plan::QueryPlan*> plans;
      plans.reserve(batch.size());
      for (const Request* r : batch) plans.push_back(r->plan);
      DACE_TRACE_SPAN("serve.batch");
      const Clock::time_point t0 = Clock::now();
      results = snapshot->PredictBatchMs(plans);
      m->batches->Add(1);
      m->batch_size->Observe(static_cast<double>(batch.size()));
      m->batch_us->Observe(ElapsedUs(t0));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < batch.size(); ++i) {
        if (failure.ok()) {
          batch[i]->ms = results[i];
        } else {
          batch[i]->status = failure;
        }
        batch[i]->done = true;
      }
    }
    client_cv_.notify_all();
  }

  const std::string tenant_;
  ModelRegistry* const registry_;
  const ServiceConfig config_;

  std::mutex mu_;
  std::condition_variable drain_cv_;   // drainer waits for work / flush
  std::condition_variable client_cv_;  // submitters wait for their result
  std::deque<Request*> pending_;
  Clock::time_point window_open_{};  // enqueue time of the oldest pending
  bool stop_ = false;
  std::thread drainer_;
};

EstimatorService::EstimatorService(ModelRegistry* registry,
                                   const ServiceConfig& config)
    : registry_(registry), config_(config) {
  DACE_CHECK(registry != nullptr);
  DACE_CHECK(config.max_batch >= 1);
  DACE_CHECK(config.queue_capacity >= 1);
  DACE_CHECK(config.max_wait_us >= 0);
}

EstimatorService::~EstimatorService() {
  Shutdown();
  // TenantQueue destructors join the drainers.
}

void EstimatorService::Shutdown() {
  std::vector<TenantQueue*> queues;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    queues.reserve(queues_.size());
    for (const auto& [tenant, queue] : queues_) queues.push_back(queue.get());
  }
  for (TenantQueue* queue : queues) queue->Shutdown();
}

StatusOr<double> EstimatorService::Estimate(std::string_view tenant,
                                            const plan::QueryPlan& plan,
                                            int64_t deadline_us) {
  {
    // Unknown tenants are refused before admission (and before any serve.*
    // accounting): there is no queue to put them on.
    auto snapshot = registry_->Get(tenant);
    if (!snapshot.ok()) return snapshot.status();
  }
  TenantQueue* queue = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      auto it = queues_.find(tenant);
      if (it == queues_.end()) {
        // Never served this tenant and no longer admitting: refuse without
        // spawning a drainer that would outlive the shutdown.
        return Status::Unavailable("service is shut down");
      }
      queue = it->second.get();  // Submit will refuse, with accounting
    } else {
      auto it = queues_.find(tenant);
      if (it == queues_.end()) {
        it = queues_
                 .emplace(std::string(tenant),
                          std::make_unique<TenantQueue>(std::string(tenant),
                                                        registry_, config_))
                 .first;
      }
      queue = it->second.get();
    }
  }
  return queue->Submit(plan, deadline_us);
}

TenantFeedback* EstimatorService::GetFeedback(std::string_view tenant) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  auto it = feedback_.find(tenant);
  if (it == feedback_.end()) {
    it = feedback_
             .emplace(std::string(tenant),
                      std::make_unique<TenantFeedback>(
                          std::string(tenant), config_.feedback,
                          obs::MetricsRegistry::Default()))
             .first;
  }
  return it->second.get();
}

TenantFeedback* EstimatorService::FindFeedback(std::string_view tenant) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  const auto it = feedback_.find(tenant);
  return it == feedback_.end() ? nullptr : it->second.get();
}

StatusOr<TrackedEstimate> EstimatorService::EstimateTracked(
    std::string_view tenant, const plan::QueryPlan& plan, int64_t deadline_us) {
  auto estimate = Estimate(tenant, plan, deadline_us);
  if (!estimate.ok()) return estimate.status();
  TrackedEstimate tracked;
  tracked.ms = *estimate;
  tracked.request_id = GetFeedback(tenant)->RecordPrediction(tracked.ms);
  return tracked;
}

Status EstimatorService::ReportActual(std::string_view tenant,
                                      uint64_t request_id, double actual_ms) {
  TenantFeedback* feedback = FindFeedback(tenant);
  if (feedback == nullptr) {
    return Status::NotFound("tenant '" + std::string(tenant) +
                            "' has no tracked estimates");
  }
  return feedback->ReportActual(request_id, actual_ms);
}

Status EstimatorService::ReportExecuted(std::string_view tenant,
                                        uint64_t request_id,
                                        const plan::QueryPlan& executed_plan) {
  TenantFeedback* feedback = FindFeedback(tenant);
  if (feedback == nullptr) {
    return Status::NotFound("tenant '" + std::string(tenant) +
                            "' has no tracked estimates");
  }
  return feedback->ReportExecuted(request_id, executed_plan);
}

std::vector<plan::QueryPlan> EstimatorService::RetainedPlans(
    std::string_view tenant) {
  TenantFeedback* feedback = FindFeedback(tenant);
  return feedback == nullptr ? std::vector<plan::QueryPlan>()
                             : feedback->RetainedPlans();
}

void EstimatorService::NotifySwap(std::string_view tenant) {
  if (TenantFeedback* feedback = FindFeedback(tenant)) feedback->NotifySwap();
}

obs::AccuracyMonitor* EstimatorService::Monitor(std::string_view tenant) {
  TenantFeedback* feedback = FindFeedback(tenant);
  return feedback == nullptr ? nullptr : feedback->monitor();
}

obs::AccuracyMonitor* EstimatorService::EnsureMonitor(std::string_view tenant) {
  return GetFeedback(tenant)->monitor();
}

}  // namespace dace::serve
