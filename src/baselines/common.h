#ifndef DACE_BASELINES_COMMON_H_
#define DACE_BASELINES_COMMON_H_

#include <numeric>
#include <vector>

#include "featurize/featurize.h"
#include "nn/layers.h"
#include "plan/plan.h"
#include "util/rng.h"

namespace dace::baselines {

// Feature-space limits shared by the within-database featurizers. WDMs are
// allowed to key on database-specific identity (tables, columns) — exactly
// the thing that makes them non-transferable.
inline constexpr int kMaxTables = 16;
inline constexpr int kMaxColumns = 8;
inline constexpr int kNumCompareOps = 6;
inline constexpr int kMaxHeightBucket = 12;

// Clamped one-hot write: indices beyond the limit share the last slot.
void WriteOneHot(double* dst, int size, int index);

// Scalers fitted on a training corpus, shared by the baseline featurizers.
struct PlanScalers {
  featurize::RobustScaler card;
  featurize::RobustScaler cost;
  featurize::RobustScaler time;
  featurize::RobustScaler literal;

  void Fit(const std::vector<plan::QueryPlan>& plans);
};

// Shared Adam training driver: `step(plan_index)` runs forward+backward on
// one training plan (accumulating gradients into `params`) and returns its
// loss. Returns the mean loss of the final epoch.
struct TrainOptions {
  double learning_rate = 1e-3;
  int epochs = 12;
  int batch_size = 64;
  uint64_t seed = 7;
};

template <typename StepFn>
double RunAdamTraining(const TrainOptions& options, size_t num_plans,
                       std::vector<nn::Parameter*> params, StepFn step) {
  nn::Adam adam(options.learning_rate);
  adam.Register(std::move(params));
  Rng rng(options.seed);
  std::vector<size_t> order(num_plans);
  std::iota(order.begin(), order.end(), 0);
  double epoch_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    epoch_loss = 0.0;
    size_t in_batch = 0;
    for (size_t idx : order) {
      epoch_loss += step(idx);
      if (++in_batch >= static_cast<size_t>(options.batch_size)) {
        adam.Step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) adam.Step();
    epoch_loss /= static_cast<double>(num_plans);
  }
  return epoch_loss;
}

// Huber loss / gradient on a scalar residual (delta = 1).
double HuberLoss(double residual);
double HuberGrad(double residual);

// Every estimator clamps its prediction into a physically plausible window:
// no query finishes in under ~10µs of dispatch overhead, and none run for
// weeks. Without the floor, a slightly-too-negative output in scaled log
// space inverts to ~0 ms and records an absurd q-error against a 0.1 ms
// truth.
inline constexpr double kMinPredictionMs = 0.05;
inline constexpr double kMaxPredictionMs = 1e9;

double ClampPredictionMs(double ms);

}  // namespace dace::baselines

#endif  // DACE_BASELINES_COMMON_H_
