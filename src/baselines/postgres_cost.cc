#include "baselines/postgres_cost.h"

#include <cmath>

#include "baselines/common.h"
#include "util/logging.h"

namespace dace::baselines {

void PostgresLinear::Train(const std::vector<plan::QueryPlan>& plans) {
  DACE_CHECK(!plans.empty());
  // Least squares on (x, y) = (cost, time) of the roots, in raw units as the
  // paper does.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  double n = 0.0;
  for (const plan::QueryPlan& plan : plans) {
    const plan::PlanNode& root = plan.node(plan.root());
    const double x = root.est_cost;
    const double y = root.actual_time_ms;
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    n += 1.0;
  }
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12) {
    slope_ = 0.0;
    intercept_ = sy / n;
    return;
  }
  slope_ = (n * sxy - sx * sy) / denom;
  intercept_ = (sy - slope_ * sx) / n;
}

double PostgresLinear::PredictMs(const plan::QueryPlan& plan) const {
  const plan::PlanNode& root = plan.node(plan.root());
  return ClampPredictionMs(slope_ * root.est_cost + intercept_);
}

}  // namespace dace::baselines
