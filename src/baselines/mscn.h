#ifndef DACE_BASELINES_MSCN_H_
#define DACE_BASELINES_MSCN_H_

#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/dace_model.h"
#include "core/estimator.h"
#include "nn/layers.h"
#include "plan/plan.h"
#include "util/rng.h"

namespace dace::baselines {

// MSCN (Kipf et al.): a multi-set convolutional network over the query's
// table / join / predicate sets. Each set element passes through a shared
// per-set MLP; elements are average-pooled; the pooled vectors are
// concatenated and fed to an output MLP (Eq. 9 of the DACE paper). A
// within-database model: features are table/column identities, so it cannot
// transfer across schemas.
//
// Knowledge integration: constructing with a pre-trained DaceEstimator
// appends DACE's 64-dim plan encoding w_E to the concatenation, yielding
// DACE-MSCN.
class Mscn : public core::CostEstimator {
 public:
  struct Config {
    int hidden = 256;
    TrainOptions train;
  };

  Mscn();
  explicit Mscn(const Config& config,
                const core::DaceEstimator* encoder = nullptr);

  std::string Name() const override {
    return encoder_ ? "DACE-MSCN" : "MSCN";
  }

  void Train(const std::vector<plan::QueryPlan>& plans) override;
  double PredictMs(const plan::QueryPlan& plan) const override;
  size_t ParameterCount() const override;

 private:
  // Per-set element dimensions.
  static constexpr int kTableDim = kMaxTables + 1;
  static constexpr int kJoinDim = 2 * kMaxTables;
  static constexpr int kPredDim =
      kMaxTables + kMaxColumns + kNumCompareOps + 2;

  struct SetFeatures {
    nn::Matrix tables;      // (num_tables × kTableDim)
    nn::Matrix joins;       // possibly 0 rows
    nn::Matrix predicates;  // possibly 0 rows
  };

  SetFeatures Extract(const plan::QueryPlan& plan) const;

  // Forward to the scaled-log-time prediction; optionally keeps caches for
  // Backward. Returns the prediction.
  struct ForwardState;
  double Forward(const SetFeatures& f, const std::vector<double>& encoding,
                 ForwardState* state) const;
  void Backward(ForwardState* state, double dloss);

  std::vector<nn::Parameter*> Parameters();

  Config config_;
  const core::DaceEstimator* encoder_;  // not owned; may be null
  PlanScalers scalers_;
  Rng rng_;

  // Set encoders: two layers each.
  nn::Linear table_fc1_, table_fc2_;
  nn::Linear join_fc1_, join_fc2_;
  nn::Linear pred_fc1_, pred_fc2_;
  // Output head.
  nn::Linear out_fc1_, out_fc2_;
};

}  // namespace dace::baselines

#endif  // DACE_BASELINES_MSCN_H_
