#include "baselines/mscn.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dace::baselines {

namespace {

using nn::Linear;
using nn::Matrix;

void ReluInPlace(Matrix* m) {
  double* data = m->data();
  for (size_t i = 0; i < m->size(); ++i) data[i] = std::max(data[i], 0.0);
}

// dpre = dpost ⊙ [pre > 0].
void ReluBackward(const Matrix& pre, const Matrix& dpost, Matrix* dpre) {
  *dpre = dpost;
  const double* p = pre.data();
  double* g = dpre->data();
  for (size_t i = 0; i < dpre->size(); ++i) {
    if (p[i] <= 0.0) g[i] = 0.0;
  }
}

}  // namespace

// Caches of one forward pass, enough to backpropagate.
struct Mscn::ForwardState {
  // Per set: caches and pre-activations (z) of the two layers.
  struct SetState {
    bool present = false;
    Linear::ExternalCache c1, c2;
    Matrix z1, z2;
    size_t rows = 0;
  };
  SetState tables, joins, predicates;
  Linear::ExternalCache out_c1, out_c2;
  Matrix out_z1;
  Matrix concat;  // (1 × concat_dim)
};

Mscn::Mscn() : Mscn(Config()) {}

Mscn::Mscn(const Config& config, const core::DaceEstimator* encoder)
    : config_(config), encoder_(encoder), rng_(config.train.seed) {
  const size_t h = static_cast<size_t>(config_.hidden);
  table_fc1_.Init(kTableDim, h, &rng_);
  table_fc2_.Init(h, h, &rng_);
  join_fc1_.Init(kJoinDim, h, &rng_);
  join_fc2_.Init(h, h, &rng_);
  pred_fc1_.Init(kPredDim, h, &rng_);
  pred_fc2_.Init(h, h, &rng_);
  const size_t enc_dim =
      encoder_ ? static_cast<size_t>(encoder_->EncodingDim()) : 0;
  out_fc1_.Init(3 * h + enc_dim, h, &rng_);
  out_fc2_.Init(h, 1, &rng_);
}

Mscn::SetFeatures Mscn::Extract(const plan::QueryPlan& plan) const {
  std::vector<std::vector<double>> tables, joins, preds;
  for (const plan::PlanNode& node : plan.nodes()) {
    const plan::NodeAnnotation& a = node.annotation;
    if (plan::IsScan(node.type) && a.table_id >= 0) {
      std::vector<double> row(kTableDim, 0.0);
      WriteOneHot(row.data(), kMaxTables, a.table_id);
      row[kMaxTables] = scalers_.card.Transform(node.est_cardinality);
      tables.push_back(std::move(row));
      for (const plan::FilterPredicate& f : a.filters) {
        std::vector<double> prow(kPredDim, 0.0);
        WriteOneHot(prow.data(), kMaxTables, a.table_id);
        WriteOneHot(prow.data() + kMaxTables, kMaxColumns, f.column_id);
        WriteOneHot(prow.data() + kMaxTables + kMaxColumns, kNumCompareOps,
                    static_cast<int>(f.op));
        prow[kPredDim - 2] = scalers_.literal.Transform(std::fabs(f.literal));
        prow[kPredDim - 1] = f.est_selectivity;
        preds.push_back(std::move(prow));
      }
    } else if (plan::IsJoin(node.type) && a.left_table >= 0) {
      std::vector<double> row(kJoinDim, 0.0);
      WriteOneHot(row.data(), kMaxTables, a.left_table);
      WriteOneHot(row.data() + kMaxTables, kMaxTables, a.right_table);
      joins.push_back(std::move(row));
    }
  }
  const auto to_matrix = [](const std::vector<std::vector<double>>& rows,
                            int dim) {
    Matrix m(rows.size(), static_cast<size_t>(dim));
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t j = 0; j < rows[i].size(); ++j) m(i, j) = rows[i][j];
    }
    return m;
  };
  SetFeatures f;
  f.tables = to_matrix(tables, kTableDim);
  f.joins = to_matrix(joins, kJoinDim);
  f.predicates = to_matrix(preds, kPredDim);
  return f;
}

double Mscn::Forward(const SetFeatures& f, const std::vector<double>& encoding,
                     ForwardState* state) const {
  const size_t h = static_cast<size_t>(config_.hidden);

  // Encodes one set; writes the mean-pooled vector into concat[offset..].
  const auto encode_set = [&](const Matrix& set, const Linear& fc1,
                              const Linear& fc2,
                              ForwardState::SetState* ss, double* pooled) {
    std::fill(pooled, pooled + h, 0.0);
    if (set.rows() == 0) {
      if (ss != nullptr) ss->present = false;
      return;
    }
    Matrix z1, h1, z2, h2;
    if (ss != nullptr) {
      fc1.ForwardCached(set, &ss->c1, &z1);
    } else {
      fc1.ForwardInference(set, &z1);
    }
    h1 = z1;
    ReluInPlace(&h1);
    if (ss != nullptr) {
      fc2.ForwardCached(h1, &ss->c2, &z2);
    } else {
      fc2.ForwardInference(h1, &z2);
    }
    h2 = z2;
    ReluInPlace(&h2);
    for (size_t i = 0; i < h2.rows(); ++i) {
      const double* row = h2.RowPtr(i);
      for (size_t j = 0; j < h; ++j) pooled[j] += row[j];
    }
    const double inv = 1.0 / static_cast<double>(h2.rows());
    for (size_t j = 0; j < h; ++j) pooled[j] *= inv;
    if (ss != nullptr) {
      ss->present = true;
      ss->z1 = std::move(z1);
      ss->z2 = std::move(z2);
      ss->rows = set.rows();
    }
  };

  const size_t enc_dim = encoding.size();
  Matrix concat(1, 3 * h + enc_dim);
  encode_set(f.tables, table_fc1_, table_fc2_,
             state ? &state->tables : nullptr, concat.RowPtr(0));
  encode_set(f.joins, join_fc1_, join_fc2_, state ? &state->joins : nullptr,
             concat.RowPtr(0) + h);
  encode_set(f.predicates, pred_fc1_, pred_fc2_,
             state ? &state->predicates : nullptr, concat.RowPtr(0) + 2 * h);
  for (size_t j = 0; j < enc_dim; ++j) concat(0, 3 * h + j) = encoding[j];

  Matrix z1, h1, out;
  if (state != nullptr) {
    out_fc1_.ForwardCached(concat, &state->out_c1, &z1);
  } else {
    out_fc1_.ForwardInference(concat, &z1);
  }
  h1 = z1;
  ReluInPlace(&h1);
  if (state != nullptr) {
    out_fc2_.ForwardCached(h1, &state->out_c2, &out);
  } else {
    out_fc2_.ForwardInference(h1, &out);
  }
  if (state != nullptr) {
    state->out_z1 = std::move(z1);
    state->concat = std::move(concat);
  }
  return out(0, 0);
}

void Mscn::Backward(ForwardState* state, double dloss) {
  const size_t h = static_cast<size_t>(config_.hidden);
  Matrix dout(1, 1);
  dout(0, 0) = dloss;
  Matrix dh1, dz1, dconcat;
  out_fc2_.BackwardCached(state->out_c2, dout, &dh1);
  ReluBackward(state->out_z1, dh1, &dz1);
  out_fc1_.BackwardCached(state->out_c1, dz1, &dconcat);

  const auto set_backward = [&](ForwardState::SetState* ss, Linear* fc1,
                                Linear* fc2, const double* dpooled) {
    if (!ss->present) return;
    // Mean-pool backward: broadcast dpooled / rows to every row.
    Matrix dh2(ss->rows, h);
    const double inv = 1.0 / static_cast<double>(ss->rows);
    for (size_t i = 0; i < ss->rows; ++i) {
      double* row = dh2.RowPtr(i);
      for (size_t j = 0; j < h; ++j) row[j] = dpooled[j] * inv;
    }
    Matrix dz2, dh1_set, dz1_set, dinput;
    ReluBackward(ss->z2, dh2, &dz2);
    fc2->BackwardCached(ss->c2, dz2, &dh1_set);
    ReluBackward(ss->z1, dh1_set, &dz1_set);
    fc1->BackwardCached(ss->c1, dz1_set, &dinput);
  };
  set_backward(&state->tables, &table_fc1_, &table_fc2_, dconcat.RowPtr(0));
  set_backward(&state->joins, &join_fc1_, &join_fc2_, dconcat.RowPtr(0) + h);
  set_backward(&state->predicates, &pred_fc1_, &pred_fc2_,
               dconcat.RowPtr(0) + 2 * h);
}

std::vector<nn::Parameter*> Mscn::Parameters() {
  std::vector<nn::Parameter*> params;
  for (Linear* layer : {&table_fc1_, &table_fc2_, &join_fc1_, &join_fc2_,
                        &pred_fc1_, &pred_fc2_, &out_fc1_, &out_fc2_}) {
    layer->CollectParameters(&params);
  }
  return params;
}

void Mscn::Train(const std::vector<plan::QueryPlan>& plans) {
  DACE_CHECK(!plans.empty());
  scalers_.Fit(plans);
  // Pre-extract features and labels once.
  std::vector<SetFeatures> features;
  std::vector<std::vector<double>> encodings;
  std::vector<double> labels;
  features.reserve(plans.size());
  labels.reserve(plans.size());
  for (const plan::QueryPlan& plan : plans) {
    features.push_back(Extract(plan));
    encodings.push_back(encoder_ ? encoder_->Encode(plan)
                                 : std::vector<double>());
    labels.push_back(
        scalers_.time.Transform(plan.node(plan.root()).actual_time_ms));
  }
  RunAdamTraining(config_.train, plans.size(), Parameters(), [&](size_t idx) {
    ForwardState state;
    const double pred = Forward(features[idx], encodings[idx], &state);
    const double residual = pred - labels[idx];
    Backward(&state, HuberGrad(residual));
    return HuberLoss(residual);
  });
}

double Mscn::PredictMs(const plan::QueryPlan& plan) const {
  const SetFeatures f = Extract(plan);
  const std::vector<double> encoding =
      encoder_ ? encoder_->Encode(plan) : std::vector<double>();
  const double pred = Forward(f, encoding, nullptr);
  return ClampPredictionMs(scalers_.time.InverseTransform(pred));
}

size_t Mscn::ParameterCount() const {
  size_t total = 0;
  for (const Linear* layer :
       {&table_fc1_, &table_fc2_, &join_fc1_, &join_fc2_, &pred_fc1_,
        &pred_fc2_, &out_fc1_, &out_fc2_}) {
    total += layer->ParameterCount();
  }
  return total;
}

}  // namespace dace::baselines
