#ifndef DACE_BASELINES_QPPNET_H_
#define DACE_BASELINES_QPPNET_H_

#include <array>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/estimator.h"
#include "nn/layers.h"
#include "plan/plan.h"
#include "util/rng.h"

namespace dace::baselines {

// QPPNet (Marcus & Papaemmanouil): one small MLP per operator type. A
// node's network consumes the node's features plus its children's "data
// vectors" and emits [predicted latency, data vector]; parents therefore
// wait on children, making inference inherently sequential (the latency
// weakness Table II exposes). Every node's latency contributes equally to
// the loss — the information redundancy DACE's loss adjuster fixes.
class QppNet : public core::CostEstimator {
 public:
  struct Config {
    int data_dim = 32;   // size of the child->parent data vector
    int hidden = 256;
    TrainOptions train;
  };

  QppNet();
  explicit QppNet(const Config& config);

  std::string Name() const override { return "QPPNet"; }
  void Train(const std::vector<plan::QueryPlan>& plans) override;
  double PredictMs(const plan::QueryPlan& plan) const override;
  size_t ParameterCount() const override;

 private:
  static constexpr int kNodeFeatures = 2;  // scaled est card, est cost

  struct NodeState {
    nn::Linear::ExternalCache c1, c2;
    nn::Matrix z1;
    nn::Matrix output;  // (1 × (1 + data_dim))
    int type = 0;
  };

  // Post-order forward over node `id`; fills states (indexed by node id)
  // when training, and returns the node's output row.
  nn::Matrix ForwardNode(const plan::QueryPlan& plan, int32_t id,
                         std::vector<NodeState>* states) const;

  std::vector<nn::Parameter*> Parameters();

  Config config_;
  PlanScalers scalers_;
  Rng rng_;
  std::array<nn::Linear, plan::kNumOperatorTypes> fc1_;
  std::array<nn::Linear, plan::kNumOperatorTypes> fc2_;
};

}  // namespace dace::baselines

#endif  // DACE_BASELINES_QPPNET_H_
