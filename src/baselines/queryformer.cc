#include "baselines/queryformer.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dace::baselines {

namespace {
using nn::Matrix;
}  // namespace

QueryFormer::QueryFormer() : QueryFormer(Config()) {}

QueryFormer::QueryFormer(const Config& config,
                         const core::DaceEstimator* encoder)
    : config_(config), encoder_(encoder), rng_(config.train.seed) {
  const size_t d = static_cast<size_t>(config_.d_model);
  embed_.Init(kInDim, d, &rng_);
  layers_.reserve(static_cast<size_t>(config_.num_layers));
  for (int l = 0; l < config_.num_layers; ++l) {
    auto layer = std::make_unique<EncoderLayer>();
    layer->attention.Init(d, d, d, &rng_);
    layer->ffn1.Init(d, static_cast<size_t>(config_.ffn_hidden), &rng_);
    layer->ffn2.Init(static_cast<size_t>(config_.ffn_hidden), d, &rng_);
    layers_.push_back(std::move(layer));
  }
  const size_t enc_dim =
      encoder_ ? static_cast<size_t>(encoder_->EncodingDim()) : 0;
  head1_.Init(d + enc_dim, d, &rng_);
  head2_.Init(d, 1, &rng_);
}

Matrix QueryFormer::BuildInput(const plan::QueryPlan& plan) const {
  const std::vector<int32_t> dfs = plan.DfsOrder();
  const std::vector<int32_t> heights = plan.Heights();
  const size_t n = dfs.size();
  Matrix input(n + 1, kInDim);
  input(0, 0) = 1.0;  // super node flag
  for (size_t i = 0; i < n; ++i) {
    const plan::PlanNode& node = plan.node(dfs[i]);
    double* row = input.RowPtr(i + 1);
    WriteOneHot(row + 1, plan::kNumOperatorTypes, static_cast<int>(node.type));
    row[1 + plan::kNumOperatorTypes] = scalers_.card.Transform(node.est_cardinality);
    row[1 + plan::kNumOperatorTypes + 1] = scalers_.cost.Transform(node.est_cost);
    const int h = std::min<int>(heights[static_cast<size_t>(dfs[i])],
                                kMaxHeightBucket);
    WriteOneHot(row + 1 + plan::kNumOperatorTypes + 2, kMaxHeightBucket + 1, h);
    WriteOneHot(row + 1 + plan::kNumOperatorTypes + 2 + kMaxHeightBucket + 1,
                kMaxTables, node.annotation.table_id);
  }
  return input;
}

Matrix QueryFormer::BuildMask(const plan::QueryPlan& plan) const {
  const size_t n = plan.DfsOrder().size();
  const std::vector<uint8_t> closure = plan.AncestorClosure();
  Matrix mask(n + 1, n + 1);
  for (size_t i = 0; i <= n; ++i) {
    for (size_t j = 0; j <= n; ++j) {
      bool allowed;
      if (i == 0 || j == 0) {
        allowed = true;  // the super node sees and is seen by everything
      } else {
        // Structure-restricted: along ancestor/descendant lines only.
        allowed = closure[(i - 1) * n + (j - 1)] != 0 ||
                  closure[(j - 1) * n + (i - 1)] != 0;
      }
      mask(i, j) = allowed ? 0.0 : nn::kMaskNegInf;
    }
  }
  return mask;
}

Matrix QueryFormer::ForwardBody(const Matrix& input, const Matrix& mask,
                                bool train) {
  DACE_CHECK(train);
  Matrix h = embed_.Forward(input);
  for (auto& layer : layers_) {
    const Matrix& a = layer->attention.Forward(h, mask);
    Matrix h1 = h;
    h1.AddScaled(a, 1.0);
    const Matrix& f =
        layer->ffn2.Forward(layer->relu.Forward(layer->ffn1.Forward(h1)));
    h = h1;
    h.AddScaled(f, 1.0);
  }
  Matrix super(1, h.cols());
  for (size_t j = 0; j < h.cols(); ++j) super(0, j) = h(0, j);
  return super;
}

Matrix QueryFormer::ForwardBodyInference(const Matrix& input,
                                         const Matrix& mask) const {
  Matrix h;
  embed_.ForwardInference(input, &h);
  for (const auto& layer : layers_) {
    Matrix a;
    layer->attention.ForwardInference(h, mask, &a);
    h.AddScaled(a, 1.0);
    Matrix z1, h1, f;
    layer->ffn1.ForwardInference(h, &z1);
    layer->relu.ForwardInference(z1, &h1);
    layer->ffn2.ForwardInference(h1, &f);
    h.AddScaled(f, 1.0);
  }
  Matrix super(1, h.cols());
  for (size_t j = 0; j < h.cols(); ++j) super(0, j) = h(0, j);
  return super;
}

std::vector<nn::Parameter*> QueryFormer::Parameters() {
  std::vector<nn::Parameter*> params;
  embed_.CollectParameters(&params);
  for (auto& layer : layers_) {
    layer->attention.CollectParameters(&params);
    layer->ffn1.CollectParameters(&params);
    layer->ffn2.CollectParameters(&params);
  }
  head1_.CollectParameters(&params);
  head2_.CollectParameters(&params);
  return params;
}

void QueryFormer::Train(const std::vector<plan::QueryPlan>& plans) {
  DACE_CHECK(!plans.empty());
  scalers_.Fit(plans);
  const size_t d = static_cast<size_t>(config_.d_model);
  const size_t enc_dim =
      encoder_ ? static_cast<size_t>(encoder_->EncodingDim()) : 0;

  // Pre-extract inputs, masks, encodings, labels.
  std::vector<Matrix> inputs, masks;
  std::vector<std::vector<double>> encodings;
  std::vector<double> labels;
  for (const plan::QueryPlan& plan : plans) {
    inputs.push_back(BuildInput(plan));
    masks.push_back(BuildMask(plan));
    encodings.push_back(encoder_ ? encoder_->Encode(plan)
                                 : std::vector<double>());
    labels.push_back(
        scalers_.time.Transform(plan.node(plan.root()).actual_time_ms));
  }

  RunAdamTraining(config_.train, plans.size(), Parameters(), [&](size_t idx) {
    const Matrix super = ForwardBody(inputs[idx], masks[idx], /*train=*/true);

    Matrix concat(1, d + enc_dim);
    for (size_t j = 0; j < d; ++j) concat(0, j) = super(0, j);
    for (size_t j = 0; j < enc_dim; ++j) concat(0, d + j) = encodings[idx][j];
    const Matrix& out = head2_.Forward(head_relu_.Forward(head1_.Forward(concat)));
    const double residual = out(0, 0) - labels[idx];

    // Head backward.
    Matrix dout(1, 1), dr, dz, dconcat;
    dout(0, 0) = HuberGrad(residual);
    head2_.Backward(dout, &dr);
    head_relu_.Backward(dr, &dz);
    head1_.Backward(dz, &dconcat);

    // Body backward: gradient only flows through the super-node row.
    const size_t rows = inputs[idx].rows();
    Matrix dh(rows, d);
    for (size_t j = 0; j < d; ++j) dh(0, j) = dconcat(0, j);
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      EncoderLayer& layer = **it;
      // out = h1 + ffn(h1): dh1 = dh + d(ffn path).
      Matrix df2, drelu, df1;
      layer.ffn2.Backward(dh, &df2);
      layer.relu.Backward(df2, &drelu);
      layer.ffn1.Backward(drelu, &df1);
      Matrix dh1 = dh;
      dh1.AddScaled(df1, 1.0);
      // h1 = hin + attn(hin): dhin = dh1 + d(attn path).
      Matrix dattn;
      layer.attention.Backward(dh1, &dattn);
      dh = dh1;
      dh.AddScaled(dattn, 1.0);
    }
    Matrix dinput;
    embed_.Backward(dh, &dinput);
    return HuberLoss(residual);
  });
}

double QueryFormer::PredictMs(const plan::QueryPlan& plan) const {
  const Matrix input = BuildInput(plan);
  const Matrix mask = BuildMask(plan);
  const Matrix super = ForwardBodyInference(input, mask);
  const size_t d = static_cast<size_t>(config_.d_model);
  const std::vector<double> encoding =
      encoder_ ? encoder_->Encode(plan) : std::vector<double>();
  Matrix concat(1, d + encoding.size());
  for (size_t j = 0; j < d; ++j) concat(0, j) = super(0, j);
  for (size_t j = 0; j < encoding.size(); ++j) concat(0, d + j) = encoding[j];
  Matrix z, r, out;
  head1_.ForwardInference(concat, &z);
  head_relu_.ForwardInference(z, &r);
  head2_.ForwardInference(r, &out);
  return ClampPredictionMs(scalers_.time.InverseTransform(out(0, 0)));
}

size_t QueryFormer::ParameterCount() const {
  size_t total = embed_.ParameterCount() + head1_.ParameterCount() +
                 head2_.ParameterCount();
  for (const auto& layer : layers_) {
    total += layer->attention.ParameterCount();
    total += layer->ffn1.ParameterCount();
    total += layer->ffn2.ParameterCount();
  }
  return total;
}

}  // namespace dace::baselines
