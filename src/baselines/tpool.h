#ifndef DACE_BASELINES_TPOOL_H_
#define DACE_BASELINES_TPOOL_H_

#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/estimator.h"
#include "nn/layers.h"
#include "plan/plan.h"
#include "util/rng.h"

namespace dace::baselines {

// TPool (Sun & Li, "An End-to-End Learning-based Cost Estimator"): a shared
// node encoder plus a recursive tree-pooling combiner, trained multi-task on
// both execution time and cardinality of the root. A within-database model:
// node features include table/column identities and predicate details.
class TPool : public core::CostEstimator {
 public:
  struct Config {
    int rep_dim = 192;  // node/sub-plan representation size
    double card_loss_weight = 0.5;
    TrainOptions train;
  };

  TPool();
  explicit TPool(const Config& config);

  std::string Name() const override { return "TPool"; }
  void Train(const std::vector<plan::QueryPlan>& plans) override;
  double PredictMs(const plan::QueryPlan& plan) const override;

  // The multi-task twin of PredictMs: root cardinality estimate.
  double PredictCardinality(const plan::QueryPlan& plan) const;

  size_t ParameterCount() const override;

 private:
  // type one-hot + table one-hot + [card, cost, #filters, min est sel].
  static constexpr int kNodeDim = plan::kNumOperatorTypes + kMaxTables + 4;

  struct NodeState {
    nn::Linear::ExternalCache enc_cache, comb_cache;
    nn::Matrix enc_z, comb_z;
  };

  nn::Matrix NodeFeature(const plan::PlanNode& node) const;

  // Post-order: returns the sub-plan representation (1 × rep_dim).
  nn::Matrix ForwardNode(const plan::QueryPlan& plan, int32_t id,
                         std::vector<NodeState>* states) const;

  // Head forward (time or card).
  double HeadForward(const nn::Linear& h1, const nn::Linear& h2,
                     const nn::Matrix& rep, nn::Linear::ExternalCache* c1,
                     nn::Linear::ExternalCache* c2, nn::Matrix* z1) const;

  std::vector<nn::Parameter*> Parameters();

  Config config_;
  PlanScalers scalers_;
  Rng rng_;
  nn::Linear encoder_;   // kNodeDim -> rep
  nn::Linear combiner_;  // 3*rep -> rep
  nn::Linear time_h1_, time_h2_;
  nn::Linear card_h1_, card_h2_;
};

}  // namespace dace::baselines

#endif  // DACE_BASELINES_TPOOL_H_
