#ifndef DACE_BASELINES_QUERYFORMER_H_
#define DACE_BASELINES_QUERYFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/dace_model.h"
#include "core/estimator.h"
#include "nn/layers.h"
#include "plan/plan.h"
#include "util/rng.h"

namespace dace::baselines {

// QueryFormer (Zhao et al.): a multi-layer tree transformer over the plan
// with (a) a height encoding in the node features, (b) structure-restricted
// attention (nodes attend along ancestor/descendant lines), and (c) a
// "super node" attending to everything, whose representation feeds the
// regression head. Only the root latency is supervised. Heavier and slower
// than DACE by construction (several encoder layers, wide FFNs).
//
// Simplification vs. the original: the learnable per-distance attention
// bias b_d is folded into the height one-hot features + the structural mask
// (DACE's own Sec. IV-C argues b_d away; the comparison stays fair).
//
// Constructing with a pre-trained DaceEstimator appends DACE's plan encoding
// to the head input, yielding DACE-QueryFormer.
class QueryFormer : public core::CostEstimator {
 public:
  struct Config {
    int d_model = 96;
    int num_layers = 5;
    int ffn_hidden = 384;
    TrainOptions train;
  };

  QueryFormer();
  explicit QueryFormer(const Config& config,
                       const core::DaceEstimator* encoder = nullptr);

  std::string Name() const override {
    return encoder_ ? "DACE-QueryFormer" : "QueryFormer";
  }

  void Train(const std::vector<plan::QueryPlan>& plans) override;
  double PredictMs(const plan::QueryPlan& plan) const override;
  size_t ParameterCount() const override;

 private:
  // super flag + type + (card, cost) + height one-hot + table one-hot.
  static constexpr int kInDim = 1 + plan::kNumOperatorTypes + 2 +
                                (kMaxHeightBucket + 1) + kMaxTables;

  struct EncoderLayer {
    nn::TreeAttention attention;
    nn::Linear ffn1, ffn2;
    nn::Relu relu;
  };

  // Rows: super node then DFS nodes.
  nn::Matrix BuildInput(const plan::QueryPlan& plan) const;
  nn::Matrix BuildMask(const plan::QueryPlan& plan) const;

  // Forward to the super-node representation (1 × d_model). `train` selects
  // the caching forward path.
  nn::Matrix ForwardBody(const nn::Matrix& input, const nn::Matrix& mask,
                         bool train);
  nn::Matrix ForwardBodyInference(const nn::Matrix& input,
                                  const nn::Matrix& mask) const;

  std::vector<nn::Parameter*> Parameters();

  Config config_;
  const core::DaceEstimator* encoder_;  // not owned; may be null
  PlanScalers scalers_;
  Rng rng_;
  nn::Linear embed_;
  std::vector<std::unique_ptr<EncoderLayer>> layers_;
  nn::Linear head1_, head2_;
  nn::Relu head_relu_;
};

}  // namespace dace::baselines

#endif  // DACE_BASELINES_QUERYFORMER_H_
