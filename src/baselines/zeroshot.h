#ifndef DACE_BASELINES_ZEROSHOT_H_
#define DACE_BASELINES_ZEROSHOT_H_

#include <array>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/estimator.h"
#include "nn/layers.h"
#include "plan/plan.h"
#include "util/rng.h"

namespace dace::baselines {

// Zero-Shot (Hilprecht & Binnig): the across-database baseline. The plan is
// treated as a directed graph; each operator type owns an MLP that encodes
// [transferable node features, mean of child messages] into a hidden
// message; bottom-up message passing ends at the root, whose message feeds a
// regression head. Features are database-agnostic (estimated cardinality /
// cost, table size, tuple width) so the model transfers — but it is ~an
// order of magnitude larger and slower than DACE, and only the root is
// supervised.
class ZeroShot : public core::CostEstimator {
 public:
  struct Config {
    int message_dim = 96;
    int hidden = 192;
    TrainOptions train;
  };

  ZeroShot();
  explicit ZeroShot(const Config& config);

  std::string Name() const override { return "Zero-Shot"; }
  void Train(const std::vector<plan::QueryPlan>& plans) override;
  double PredictMs(const plan::QueryPlan& plan) const override;
  size_t ParameterCount() const override;

 private:
  static constexpr int kNodeFeatures = 4;  // card, cost, table rows, is_scan

  struct NodeState {
    nn::Linear::ExternalCache c1, c2;
    nn::Matrix z1, z2;
    int type = 0;
    size_t num_children = 0;
  };

  nn::Matrix NodeInput(const plan::PlanNode& node,
                       const nn::Matrix& child_mean) const;

  // Post-order forward; returns the node's hidden message (1 × message_dim).
  nn::Matrix ForwardNode(const plan::QueryPlan& plan, int32_t id,
                         std::vector<NodeState>* states) const;

  std::vector<nn::Parameter*> Parameters();

  Config config_;
  PlanScalers scalers_;
  featurize::RobustScaler table_rows_scaler_;
  Rng rng_;
  std::array<nn::Linear, plan::kNumOperatorTypes> fc1_;
  std::array<nn::Linear, plan::kNumOperatorTypes> fc2_;
  nn::Linear head1_, head2_;
};

}  // namespace dace::baselines

#endif  // DACE_BASELINES_ZEROSHOT_H_
