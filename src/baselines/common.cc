#include "baselines/common.h"

#include <algorithm>
#include <cmath>

namespace dace::baselines {

void WriteOneHot(double* dst, int size, int index) {
  if (index < 0) return;
  dst[std::min(index, size - 1)] = 1.0;
}

void PlanScalers::Fit(const std::vector<plan::QueryPlan>& plans) {
  std::vector<double> cards, costs, times, literals;
  for (const plan::QueryPlan& plan : plans) {
    for (const plan::PlanNode& node : plan.nodes()) {
      cards.push_back(node.est_cardinality);
      costs.push_back(node.est_cost);
      times.push_back(node.actual_time_ms);
      for (const plan::FilterPredicate& f : node.annotation.filters) {
        literals.push_back(std::fabs(f.literal));
      }
    }
  }
  card.Fit(std::move(cards));
  cost.Fit(std::move(costs));
  time.Fit(std::move(times));
  literal.Fit(std::move(literals));
}

double HuberLoss(double residual) {
  const double a = std::fabs(residual);
  return a <= 1.0 ? 0.5 * residual * residual : a - 0.5;
}

double HuberGrad(double residual) { return std::clamp(residual, -1.0, 1.0); }

double ClampPredictionMs(double ms) {
  return std::clamp(ms, kMinPredictionMs, kMaxPredictionMs);
}

}  // namespace dace::baselines
