#include "baselines/tpool.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dace::baselines {

namespace {
using nn::Linear;
using nn::Matrix;

void ReluInPlace(Matrix* m) {
  double* data = m->data();
  for (size_t i = 0; i < m->size(); ++i) data[i] = std::max(data[i], 0.0);
}

void MaskByPreactivation(const Matrix& z, Matrix* grad) {
  const double* p = z.data();
  double* g = grad->data();
  for (size_t i = 0; i < grad->size(); ++i) {
    if (p[i] <= 0.0) g[i] = 0.0;
  }
}
}  // namespace

TPool::TPool() : TPool(Config()) {}

TPool::TPool(const Config& config) : config_(config), rng_(config.train.seed) {
  const size_t rep = static_cast<size_t>(config_.rep_dim);
  encoder_.Init(kNodeDim, rep, &rng_);
  combiner_.Init(3 * rep, rep, &rng_);
  time_h1_.Init(rep, rep / 2, &rng_);
  time_h2_.Init(rep / 2, 1, &rng_);
  card_h1_.Init(rep, rep / 2, &rng_);
  card_h2_.Init(rep / 2, 1, &rng_);
}

Matrix TPool::NodeFeature(const plan::PlanNode& node) const {
  Matrix x(1, kNodeDim);
  WriteOneHot(x.RowPtr(0), plan::kNumOperatorTypes,
              static_cast<int>(node.type));
  WriteOneHot(x.RowPtr(0) + plan::kNumOperatorTypes, kMaxTables,
              node.annotation.table_id);
  const size_t base = plan::kNumOperatorTypes + kMaxTables;
  x(0, base) = scalers_.card.Transform(node.est_cardinality);
  x(0, base + 1) = scalers_.cost.Transform(node.est_cost);
  x(0, base + 2) =
      static_cast<double>(node.annotation.filters.size()) / 4.0;
  double min_sel = 1.0;
  for (const plan::FilterPredicate& f : node.annotation.filters) {
    min_sel = std::min(min_sel, f.est_selectivity);
  }
  x(0, base + 3) = min_sel;
  return x;
}

Matrix TPool::ForwardNode(const plan::QueryPlan& plan, int32_t id,
                          std::vector<NodeState>* states) const {
  const plan::PlanNode& node = plan.node(id);
  const size_t rep = static_cast<size_t>(config_.rep_dim);

  Matrix children[2];
  for (size_t k = 0; k < node.children.size() && k < 2; ++k) {
    children[k] = ForwardNode(plan, node.children[k], states);
  }

  const Matrix x = NodeFeature(node);
  Matrix enc_z, enc_h;
  NodeState* s =
      states != nullptr ? &(*states)[static_cast<size_t>(id)] : nullptr;
  if (s != nullptr) {
    encoder_.ForwardCached(x, &s->enc_cache, &enc_z);
  } else {
    encoder_.ForwardInference(x, &enc_z);
  }
  enc_h = enc_z;
  ReluInPlace(&enc_h);

  Matrix comb_in(1, 3 * rep);
  for (size_t j = 0; j < rep; ++j) comb_in(0, j) = enc_h(0, j);
  for (int k = 0; k < 2; ++k) {
    if (!children[k].empty()) {
      for (size_t j = 0; j < rep; ++j) {
        comb_in(0, rep * static_cast<size_t>(k + 1) + j) = children[k](0, j);
      }
    }
  }
  Matrix comb_z, out;
  if (s != nullptr) {
    combiner_.ForwardCached(comb_in, &s->comb_cache, &comb_z);
  } else {
    combiner_.ForwardInference(comb_in, &comb_z);
  }
  out = comb_z;
  ReluInPlace(&out);
  if (s != nullptr) {
    s->enc_z = std::move(enc_z);
    s->comb_z = std::move(comb_z);
  }
  return out;
}

double TPool::HeadForward(const Linear& h1, const Linear& h2,
                          const Matrix& rep, Linear::ExternalCache* c1,
                          Linear::ExternalCache* c2, Matrix* z1) const {
  Matrix hz1, hh1, out;
  if (c1 != nullptr) {
    h1.ForwardCached(rep, c1, &hz1);
  } else {
    h1.ForwardInference(rep, &hz1);
  }
  hh1 = hz1;
  ReluInPlace(&hh1);
  if (c2 != nullptr) {
    h2.ForwardCached(hh1, c2, &out);
  } else {
    h2.ForwardInference(hh1, &out);
  }
  if (z1 != nullptr) *z1 = std::move(hz1);
  return out(0, 0);
}

std::vector<nn::Parameter*> TPool::Parameters() {
  std::vector<nn::Parameter*> params;
  for (Linear* layer : {&encoder_, &combiner_, &time_h1_, &time_h2_,
                        &card_h1_, &card_h2_}) {
    layer->CollectParameters(&params);
  }
  return params;
}

void TPool::Train(const std::vector<plan::QueryPlan>& plans) {
  DACE_CHECK(!plans.empty());
  scalers_.Fit(plans);
  const size_t rep = static_cast<size_t>(config_.rep_dim);

  RunAdamTraining(config_.train, plans.size(), Parameters(), [&](size_t idx) {
    const plan::QueryPlan& plan = plans[idx];
    std::vector<NodeState> states(plan.size());
    const Matrix root = ForwardNode(plan, plan.root(), &states);

    const plan::PlanNode& root_node = plan.node(plan.root());
    const double time_label = scalers_.time.Transform(root_node.actual_time_ms);
    const double card_label =
        scalers_.card.Transform(root_node.actual_cardinality);

    Linear::ExternalCache tc1, tc2, cc1, cc2;
    Matrix tz1, cz1;
    const double time_pred =
        HeadForward(time_h1_, time_h2_, root, &tc1, &tc2, &tz1);
    const double card_pred =
        HeadForward(card_h1_, card_h2_, root, &cc1, &cc2, &cz1);
    const double tr = time_pred - time_label;
    const double cr = card_pred - card_label;
    const double loss =
        HuberLoss(tr) + config_.card_loss_weight * HuberLoss(cr);

    // Heads backward into the root representation.
    Matrix droot(1, rep);
    {
      Matrix dout(1, 1), dh1, dz1, dr;
      dout(0, 0) = HuberGrad(tr);
      time_h2_.BackwardCached(tc2, dout, &dh1);
      dz1 = dh1;
      MaskByPreactivation(tz1, &dz1);
      time_h1_.BackwardCached(tc1, dz1, &dr);
      droot.AddScaled(dr, 1.0);
    }
    {
      Matrix dout(1, 1), dh1, dz1, dr;
      dout(0, 0) = config_.card_loss_weight * HuberGrad(cr);
      card_h2_.BackwardCached(cc2, dout, &dh1);
      dz1 = dh1;
      MaskByPreactivation(cz1, &dz1);
      card_h1_.BackwardCached(cc1, dz1, &dr);
      droot.AddScaled(dr, 1.0);
    }

    // Top-down through the tree pooling.
    std::vector<Matrix> drep(plan.size());
    drep[static_cast<size_t>(plan.root())] = std::move(droot);
    for (int32_t id : plan.DfsOrder()) {
      NodeState& s = states[static_cast<size_t>(id)];
      Matrix& grad = drep[static_cast<size_t>(id)];
      if (grad.empty()) grad = Matrix(1, rep);
      Matrix dcomb_z = grad;
      MaskByPreactivation(s.comb_z, &dcomb_z);
      Matrix dcomb_in;
      combiner_.BackwardCached(s.comb_cache, dcomb_z, &dcomb_in);
      // Own-encoding slice.
      Matrix denc_h(1, rep);
      for (size_t j = 0; j < rep; ++j) denc_h(0, j) = dcomb_in(0, j);
      MaskByPreactivation(s.enc_z, &denc_h);
      Matrix dx;
      encoder_.BackwardCached(s.enc_cache, denc_h, &dx);
      // Children slices.
      const auto& children = plan.node(id).children;
      for (size_t k = 0; k < children.size() && k < 2; ++k) {
        Matrix& dchild = drep[static_cast<size_t>(children[k])];
        if (dchild.empty()) dchild = Matrix(1, rep);
        for (size_t j = 0; j < rep; ++j) {
          dchild(0, j) += dcomb_in(0, rep * (k + 1) + j);
        }
      }
    }
    return loss;
  });
}

double TPool::PredictMs(const plan::QueryPlan& plan) const {
  const Matrix root = ForwardNode(plan, plan.root(), nullptr);
  const double pred =
      HeadForward(time_h1_, time_h2_, root, nullptr, nullptr, nullptr);
  return ClampPredictionMs(scalers_.time.InverseTransform(pred));
}

double TPool::PredictCardinality(const plan::QueryPlan& plan) const {
  const Matrix root = ForwardNode(plan, plan.root(), nullptr);
  const double pred =
      HeadForward(card_h1_, card_h2_, root, nullptr, nullptr, nullptr);
  return std::max(scalers_.card.InverseTransform(pred), 1e-6);
}

size_t TPool::ParameterCount() const {
  size_t total = 0;
  for (const Linear* layer : {&encoder_, &combiner_, &time_h1_, &time_h2_,
                              &card_h1_, &card_h2_}) {
    total += layer->ParameterCount();
  }
  return total;
}

}  // namespace dace::baselines
