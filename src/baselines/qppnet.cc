#include "baselines/qppnet.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dace::baselines {

namespace {
using nn::Linear;
using nn::Matrix;
}  // namespace

QppNet::QppNet() : QppNet(Config()) {}

QppNet::QppNet(const Config& config) : config_(config), rng_(config.train.seed) {
  const size_t in_dim =
      kNodeFeatures + 2 * static_cast<size_t>(config_.data_dim);
  for (int t = 0; t < plan::kNumOperatorTypes; ++t) {
    fc1_[static_cast<size_t>(t)].Init(in_dim,
                                      static_cast<size_t>(config_.hidden), &rng_);
    fc2_[static_cast<size_t>(t)].Init(static_cast<size_t>(config_.hidden),
                                      1 + static_cast<size_t>(config_.data_dim),
                                      &rng_);
  }
}

Matrix QppNet::ForwardNode(const plan::QueryPlan& plan, int32_t id,
                           std::vector<NodeState>* states) const {
  const plan::PlanNode& node = plan.node(id);
  const int type = static_cast<int>(node.type);
  const size_t dd = static_cast<size_t>(config_.data_dim);

  Matrix input(1, kNodeFeatures + 2 * dd);
  input(0, 0) = scalers_.card.Transform(node.est_cardinality);
  input(0, 1) = scalers_.cost.Transform(node.est_cost);
  for (size_t k = 0; k < node.children.size() && k < 2; ++k) {
    const Matrix child = ForwardNode(plan, node.children[k], states);
    for (size_t j = 0; j < dd; ++j) {
      input(0, kNodeFeatures + k * dd + j) = child(0, 1 + j);
    }
  }

  const Linear& fc1 = fc1_[static_cast<size_t>(type)];
  const Linear& fc2 = fc2_[static_cast<size_t>(type)];
  Matrix z1, h1, out;
  if (states != nullptr) {
    NodeState& s = (*states)[static_cast<size_t>(id)];
    s.type = type;
    fc1.ForwardCached(input, &s.c1, &z1);
    h1 = z1;
    for (size_t i = 0; i < h1.size(); ++i) {
      h1.data()[i] = std::max(h1.data()[i], 0.0);
    }
    fc2.ForwardCached(h1, &s.c2, &out);
    s.z1 = std::move(z1);
    s.output = out;
  } else {
    fc1.ForwardInference(input, &z1);
    h1 = z1;
    for (size_t i = 0; i < h1.size(); ++i) {
      h1.data()[i] = std::max(h1.data()[i], 0.0);
    }
    fc2.ForwardInference(h1, &out);
  }
  return out;
}

std::vector<nn::Parameter*> QppNet::Parameters() {
  std::vector<nn::Parameter*> params;
  for (int t = 0; t < plan::kNumOperatorTypes; ++t) {
    fc1_[static_cast<size_t>(t)].CollectParameters(&params);
    fc2_[static_cast<size_t>(t)].CollectParameters(&params);
  }
  return params;
}

void QppNet::Train(const std::vector<plan::QueryPlan>& plans) {
  DACE_CHECK(!plans.empty());
  scalers_.Fit(plans);
  const size_t dd = static_cast<size_t>(config_.data_dim);

  RunAdamTraining(config_.train, plans.size(), Parameters(), [&](size_t idx) {
    const plan::QueryPlan& plan = plans[idx];
    std::vector<NodeState> states(plan.size());
    ForwardNode(plan, plan.root(), &states);

    // Per-node losses, equal weights (QPPNet's sub-plan supervision).
    const size_t n = plan.size();
    double loss = 0.0;
    // d(output) per node: gradient on the latency slot from this node's own
    // loss plus gradients on the data slots flowing down from the parent.
    std::vector<Matrix> doutput(n);
    for (size_t i = 0; i < n; ++i) {
      doutput[i] = Matrix(1, 1 + dd);
      const double label =
          scalers_.time.Transform(plan.node(static_cast<int32_t>(i)).actual_time_ms);
      const double residual =
          states[i].output(0, 0) - label;
      loss += HuberLoss(residual) / static_cast<double>(n);
      doutput[i](0, 0) = HuberGrad(residual) / static_cast<double>(n);
    }

    // Backward in preorder: parents are visited before children, so a
    // child's doutput is complete when its turn comes.
    for (int32_t id : plan.DfsOrder()) {
      NodeState& s = states[static_cast<size_t>(id)];
      Matrix dh1, dz1, dinput;
      fc2_[static_cast<size_t>(s.type)].BackwardCached(s.c2,
                                                       doutput[static_cast<size_t>(id)],
                                                       &dh1);
      dz1 = dh1;
      for (size_t i = 0; i < dz1.size(); ++i) {
        if (s.z1.data()[i] <= 0.0) dz1.data()[i] = 0.0;
      }
      fc1_[static_cast<size_t>(s.type)].BackwardCached(s.c1, dz1, &dinput);
      const auto& children = plan.node(id).children;
      for (size_t k = 0; k < children.size() && k < 2; ++k) {
        Matrix& dchild = doutput[static_cast<size_t>(children[k])];
        for (size_t j = 0; j < dd; ++j) {
          dchild(0, 1 + j) += dinput(0, kNodeFeatures + k * dd + j);
        }
      }
    }
    return loss;
  });
}

double QppNet::PredictMs(const plan::QueryPlan& plan) const {
  const Matrix out = ForwardNode(plan, plan.root(), nullptr);
  return ClampPredictionMs(scalers_.time.InverseTransform(out(0, 0)));
}

size_t QppNet::ParameterCount() const {
  size_t total = 0;
  for (int t = 0; t < plan::kNumOperatorTypes; ++t) {
    total += fc1_[static_cast<size_t>(t)].ParameterCount();
    total += fc2_[static_cast<size_t>(t)].ParameterCount();
  }
  return total;
}

}  // namespace dace::baselines
