#include "baselines/zeroshot.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dace::baselines {

namespace {
using nn::Linear;
using nn::Matrix;

void ReluInPlace(Matrix* m) {
  double* data = m->data();
  for (size_t i = 0; i < m->size(); ++i) data[i] = std::max(data[i], 0.0);
}
}  // namespace

ZeroShot::ZeroShot() : ZeroShot(Config()) {}

ZeroShot::ZeroShot(const Config& config)
    : config_(config), rng_(config.train.seed) {
  const size_t in_dim =
      kNodeFeatures + static_cast<size_t>(config_.message_dim);
  for (int t = 0; t < plan::kNumOperatorTypes; ++t) {
    fc1_[static_cast<size_t>(t)].Init(in_dim,
                                      static_cast<size_t>(config_.hidden),
                                      &rng_);
    fc2_[static_cast<size_t>(t)].Init(static_cast<size_t>(config_.hidden),
                                      static_cast<size_t>(config_.message_dim),
                                      &rng_);
  }
  head1_.Init(static_cast<size_t>(config_.message_dim),
              static_cast<size_t>(config_.message_dim), &rng_);
  head2_.Init(static_cast<size_t>(config_.message_dim), 1, &rng_);
}

Matrix ZeroShot::NodeInput(const plan::PlanNode& node,
                           const Matrix& child_mean) const {
  Matrix input(1, kNodeFeatures + static_cast<size_t>(config_.message_dim));
  input(0, 0) = scalers_.card.Transform(node.est_cardinality);
  input(0, 1) = scalers_.cost.Transform(node.est_cost);
  input(0, 2) = node.annotation.table_id >= 0
                    ? table_rows_scaler_.Transform(node.annotation.table_rows)
                    : 0.0;
  input(0, 3) = plan::IsScan(node.type) ? 1.0 : 0.0;
  if (!child_mean.empty()) {
    for (size_t j = 0; j < child_mean.cols(); ++j) {
      input(0, kNodeFeatures + j) = child_mean(0, j);
    }
  }
  return input;
}

Matrix ZeroShot::ForwardNode(const plan::QueryPlan& plan, int32_t id,
                             std::vector<NodeState>* states) const {
  const plan::PlanNode& node = plan.node(id);
  const size_t md = static_cast<size_t>(config_.message_dim);

  Matrix child_mean;
  if (!node.children.empty()) {
    child_mean = Matrix(1, md);
    for (int32_t child : node.children) {
      const Matrix msg = ForwardNode(plan, child, states);
      child_mean.AddScaled(msg, 1.0 / static_cast<double>(node.children.size()));
    }
  }

  const int type = static_cast<int>(node.type);
  const Matrix input = NodeInput(node, child_mean);
  const Linear& fc1 = fc1_[static_cast<size_t>(type)];
  const Linear& fc2 = fc2_[static_cast<size_t>(type)];
  Matrix z1, h1, z2, msg;
  if (states != nullptr) {
    NodeState& s = (*states)[static_cast<size_t>(id)];
    s.type = type;
    s.num_children = node.children.size();
    fc1.ForwardCached(input, &s.c1, &z1);
    h1 = z1;
    ReluInPlace(&h1);
    fc2.ForwardCached(h1, &s.c2, &z2);
    msg = z2;
    ReluInPlace(&msg);
    s.z1 = std::move(z1);
    s.z2 = std::move(z2);
  } else {
    fc1.ForwardInference(input, &z1);
    h1 = z1;
    ReluInPlace(&h1);
    fc2.ForwardInference(h1, &z2);
    msg = z2;
    ReluInPlace(&msg);
  }
  return msg;
}

std::vector<nn::Parameter*> ZeroShot::Parameters() {
  std::vector<nn::Parameter*> params;
  for (int t = 0; t < plan::kNumOperatorTypes; ++t) {
    fc1_[static_cast<size_t>(t)].CollectParameters(&params);
    fc2_[static_cast<size_t>(t)].CollectParameters(&params);
  }
  head1_.CollectParameters(&params);
  head2_.CollectParameters(&params);
  return params;
}

void ZeroShot::Train(const std::vector<plan::QueryPlan>& plans) {
  DACE_CHECK(!plans.empty());
  scalers_.Fit(plans);
  {
    std::vector<double> rows;
    for (const plan::QueryPlan& plan : plans) {
      for (const plan::PlanNode& node : plan.nodes()) {
        if (node.annotation.table_id >= 0) {
          rows.push_back(node.annotation.table_rows);
        }
      }
    }
    table_rows_scaler_.Fit(std::move(rows));
  }
  const size_t md = static_cast<size_t>(config_.message_dim);

  RunAdamTraining(config_.train, plans.size(), Parameters(), [&](size_t idx) {
    const plan::QueryPlan& plan = plans[idx];
    std::vector<NodeState> states(plan.size());
    const Matrix root_msg = ForwardNode(plan, plan.root(), &states);

    // Head forward.
    Linear::ExternalCache hc1, hc2;
    Matrix hz1, hh1, out;
    head1_.ForwardCached(root_msg, &hc1, &hz1);
    hh1 = hz1;
    ReluInPlace(&hh1);
    head2_.ForwardCached(hh1, &hc2, &out);

    const double label =
        scalers_.time.Transform(plan.node(plan.root()).actual_time_ms);
    const double residual = out(0, 0) - label;

    // Head backward.
    Matrix dout(1, 1), dhh1, dhz1, droot;
    dout(0, 0) = HuberGrad(residual);
    head2_.BackwardCached(hc2, dout, &dhh1);
    dhz1 = dhh1;
    for (size_t i = 0; i < dhz1.size(); ++i) {
      if (hz1.data()[i] <= 0.0) dhz1.data()[i] = 0.0;
    }
    head1_.BackwardCached(hc1, dhz1, &droot);

    // Top-down through the message graph: preorder guarantees parents
    // finish before their children are visited.
    std::vector<Matrix> dmsg(plan.size());
    dmsg[static_cast<size_t>(plan.root())] = droot;
    for (int32_t id : plan.DfsOrder()) {
      NodeState& s = states[static_cast<size_t>(id)];
      Matrix& grad = dmsg[static_cast<size_t>(id)];
      if (grad.empty()) grad = Matrix(1, md);
      // Through the trailing ReLU of the message.
      Matrix dz2 = grad;
      for (size_t i = 0; i < dz2.size(); ++i) {
        if (s.z2.data()[i] <= 0.0) dz2.data()[i] = 0.0;
      }
      Matrix dh1, dz1, dinput;
      fc2_[static_cast<size_t>(s.type)].BackwardCached(s.c2, dz2, &dh1);
      dz1 = dh1;
      for (size_t i = 0; i < dz1.size(); ++i) {
        if (s.z1.data()[i] <= 0.0) dz1.data()[i] = 0.0;
      }
      fc1_[static_cast<size_t>(s.type)].BackwardCached(s.c1, dz1, &dinput);
      const auto& children = plan.node(id).children;
      if (!children.empty()) {
        const double inv = 1.0 / static_cast<double>(children.size());
        for (int32_t child : children) {
          Matrix& dchild = dmsg[static_cast<size_t>(child)];
          if (dchild.empty()) dchild = Matrix(1, md);
          for (size_t j = 0; j < md; ++j) {
            dchild(0, j) += dinput(0, kNodeFeatures + j) * inv;
          }
        }
      }
    }
    return HuberLoss(residual);
  });
}

double ZeroShot::PredictMs(const plan::QueryPlan& plan) const {
  const Matrix root_msg = ForwardNode(plan, plan.root(), nullptr);
  Matrix hz1, hh1, out;
  head1_.ForwardInference(root_msg, &hz1);
  hh1 = hz1;
  ReluInPlace(&hh1);
  head2_.ForwardInference(hh1, &out);
  return ClampPredictionMs(scalers_.time.InverseTransform(out(0, 0)));
}

size_t ZeroShot::ParameterCount() const {
  size_t total = head1_.ParameterCount() + head2_.ParameterCount();
  for (int t = 0; t < plan::kNumOperatorTypes; ++t) {
    total += fc1_[static_cast<size_t>(t)].ParameterCount();
    total += fc2_[static_cast<size_t>(t)].ParameterCount();
  }
  return total;
}

}  // namespace dace::baselines
