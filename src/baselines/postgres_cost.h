#ifndef DACE_BASELINES_POSTGRES_COST_H_
#define DACE_BASELINES_POSTGRES_COST_H_

#include <string>
#include <vector>

#include "core/estimator.h"
#include "plan/plan.h"

namespace dace::baselines {

// The "PostgreSQL" baseline of the paper: the optimizer's abstract cost is
// not in time units, so (as in Sec. V-B) a linear model maps it to predicted
// execution time: time = a·cost + b, fit by least squares on the training
// roots. Raw-space least squares is dominated by the long-running queries,
// so short queries suffer large relative errors — the behaviour Table I
// reports for PostgreSQL.
class PostgresLinear : public core::CostEstimator {
 public:
  std::string Name() const override { return "PostgreSQL"; }

  void Train(const std::vector<plan::QueryPlan>& plans) override;

  double PredictMs(const plan::QueryPlan& plan) const override;

  size_t ParameterCount() const override { return 2; }

  double slope() const { return slope_; }
  double intercept() const { return intercept_; }

 private:
  double slope_ = 1.0;
  double intercept_ = 0.0;
};

}  // namespace dace::baselines

#endif  // DACE_BASELINES_POSTGRES_COST_H_
