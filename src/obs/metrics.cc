#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/window.h"
#include "util/logging.h"

namespace dace::obs {

namespace internal {

size_t AssignShardSlot() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal

// ----------------------------------------------------------- Histogram ----

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      buckets_(new std::atomic<uint64_t>[upper_bounds.size() + 1]) {
  DACE_CHECK(!bounds_.empty());
  DACE_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  // First bucket whose upper bound is >= v; everything past the last bound
  // lands in the overflow bucket.
  const size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  s.upper_bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i == upper_bounds.size()) return upper_bounds.back();  // overflow
      const double lo = i == 0 ? 0.0 : upper_bounds[i - 1];
      const double hi = upper_bounds[i];
      const double frac =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return upper_bounds.back();
}

// ------------------------------------------------------ bucket layouts ----

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  DACE_CHECK_GT(start, 0.0);
  DACE_CHECK_GT(factor, 1.0);
  DACE_CHECK_GT(count, 0u);
  std::vector<double> bounds(count);
  double v = start;
  for (size_t i = 0; i < count; ++i, v *= factor) bounds[i] = v;
  return bounds;
}

std::span<const double> LatencyBucketsUs() {
  static const std::vector<double>* buckets =
      new std::vector<double>(ExponentialBuckets(1.0, 2.0, 27));
  return *buckets;
}

std::span<const double> QErrorBuckets() {
  static const std::vector<double>* buckets =
      new std::vector<double>(ExponentialBuckets(1.05, 1.35, 32));
  return *buckets;
}

// ----------------------------------------------------- MetricsRegistry ----

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
  }
  return it->second.get();
}

WindowedHistogram* MetricsRegistry::GetWindowedHistogram(
    std::string_view name, std::span<const double> upper_bounds,
    const WindowConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = windowed_.find(name);
  if (it == windowed_.end()) {
    it = windowed_
             .emplace(std::string(name),
                      std::make_unique<WindowedHistogram>(upper_bounds, config))
             .first;
  }
  return it->second.get();
}

EwmaGauge* MetricsRegistry::GetEwma(std::string_view name, double alpha) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ewmas_.find(name);
  if (it == ewmas_.end()) {
    it = ewmas_.emplace(std::string(name), std::make_unique<EwmaGauge>(alpha))
             .first;
  }
  return it->second.get();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.push_back({name, hist->TakeSnapshot()});
  }
  snap.windowed.reserve(windowed_.size());
  for (const auto& [name, win] : windowed_) {
    snap.windowed.push_back({name, win->TakeSnapshot()});
  }
  snap.ewmas.reserve(ewmas_.size());
  for (const auto& [name, ewma] : ewmas_) {
    snap.ewmas.push_back({name, ewma->Value(), ewma->Count()});
  }
  return snap;
}

void MetricsRegistry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
  for (auto& [name, win] : windowed_) win->Reset();
  for (auto& [name, ewma] : ewmas_) ewma->Reset();
}

}  // namespace dace::obs
