#ifndef DACE_OBS_METRICS_H_
#define DACE_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dace::obs {

namespace internal {

// Stable small shard index for the calling thread, assigned round-robin on
// first use. Kept inline so Counter::Add compiles down to a TLS load plus one
// relaxed fetch_add.
size_t AssignShardSlot();

inline size_t ThisThreadShard() {
  thread_local const size_t slot = AssignShardSlot();
  return slot;
}

}  // namespace internal

// Monotone event counter. Increments go to one of kShards cache-line-padded
// atomics selected by the calling thread, so concurrent writers (pool
// workers on the inference hot path) never bounce the same line; Value()
// reduces the shards. Sums are exact once writers are quiescent (joined or
// past a ParallelFor barrier) — the relaxed ordering only relaxes *when* an
// increment becomes visible, never whether it does.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    shards_[internal::ThisThreadShard() % kShards].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

// Last-written (or high-water) double value. A single atomic — gauges are
// written at epoch/batch granularity, not per item, so sharding would buy
// nothing.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) {
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }

  // Monotone high-water mark: keeps the max of the current and new value.
  void SetMax(double v) {
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (v > std::bit_cast<double>(cur) &&
           !bits_.compare_exchange_weak(cur, std::bit_cast<uint64_t>(v),
                                        std::memory_order_relaxed)) {
    }
  }

  void Add(double v) {
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        cur, std::bit_cast<uint64_t>(std::bit_cast<double>(cur) + v),
        std::memory_order_relaxed)) {
    }
  }

  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

  void Reset() { bits_.store(std::bit_cast<uint64_t>(0.0), std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> bits_{std::bit_cast<uint64_t>(0.0)};
};

// Fixed-bucket histogram with Prometheus "le" semantics: bucket i counts
// observations v <= upper_bounds[i] (first matching bucket), plus one
// overflow bucket for v > upper_bounds.back(). Bounds are fixed at
// construction so Observe is a branch-free-ish binary search plus relaxed
// atomic adds — no locks, no allocation.
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);

  struct Snapshot {
    std::vector<double> upper_bounds;   // finite bucket bounds
    std::vector<uint64_t> counts;       // upper_bounds.size() + 1 (overflow)
    uint64_t count = 0;                 // total observations
    double sum = 0.0;

    double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
    // Quantile estimate by linear interpolation inside the bucket holding
    // rank q*count. q in [0, 1]. The first bucket interpolates from 0 (all
    // tracked signals — latencies, q-errors — are non-negative); the
    // overflow bucket reports the last finite bound.
    double Quantile(double q) const;
  };

  Snapshot TakeSnapshot() const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Canonical bucket layouts.
// start, start*factor, ... (count values). Requires start > 0, factor > 1.
std::vector<double> ExponentialBuckets(double start, double factor, size_t count);
// Latency in microseconds: 1µs .. ~67s, powers of two (27 buckets).
std::span<const double> LatencyBucketsUs();
// Q-error (>= 1) in log-space: 1.05, 1.05*1.35^k .. ~1e4 (32 buckets).
std::span<const double> QErrorBuckets();

// Rolling-window metric types (obs/window.h); registered alongside the
// cumulative kinds but kept behind forward declarations so the hot-path
// Counter/Gauge/Histogram header stays lean.
class WindowedHistogram;
class EwmaGauge;
struct WindowConfig;

// Named metric registry. Get* registers on first use (under a mutex) and
// returns a stable pointer callers cache in a local/static handle; every
// subsequent operation on the handle is lock-free. Names are unique per
// metric kind. The process-wide Default() registry is what the run report
// (obs/report.h) snapshots; tests construct private registries.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry (leaky singleton: safe to use from atexit hooks).
  static MetricsRegistry* Default();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  // The bounds of the first registration win; later calls with the same name
  // return the existing histogram regardless of `upper_bounds`.
  Histogram* GetHistogram(std::string_view name,
                          std::span<const double> upper_bounds);
  // Rolling-window variants: bounds and window shape of the first
  // registration win, like GetHistogram / GetEwma's alpha.
  WindowedHistogram* GetWindowedHistogram(std::string_view name,
                                          std::span<const double> upper_bounds,
                                          const WindowConfig& config);
  EwmaGauge* GetEwma(std::string_view name, double alpha);

  struct Snapshot {
    struct CounterValue {
      std::string name;
      uint64_t value = 0;
    };
    struct GaugeValue {
      std::string name;
      double value = 0.0;
    };
    struct HistogramValue {
      std::string name;
      Histogram::Snapshot hist;
    };
    struct EwmaValue {
      std::string name;
      double value = 0.0;
      uint64_t count = 0;
    };
    std::vector<CounterValue> counters;      // sorted by name
    std::vector<GaugeValue> gauges;          // sorted by name
    std::vector<HistogramValue> histograms;  // sorted by name
    std::vector<HistogramValue> windowed;    // sorted by name (live merge)
    std::vector<EwmaValue> ewmas;            // sorted by name
  };

  // Point-in-time copy: taken under the registration mutex, so it contains
  // every metric registered before the call exactly once, and is immutable
  // afterwards (later Observe/Add calls do not alter a taken snapshot).
  Snapshot TakeSnapshot() const;

  // Zeroes every registered metric (registrations and cached handles stay
  // valid). Test isolation helper for code that shares Default().
  void ResetAllForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>, std::less<>>
      windowed_;
  std::map<std::string, std::unique_ptr<EwmaGauge>, std::less<>> ewmas_;
};

}  // namespace dace::obs

#endif  // DACE_OBS_METRICS_H_
