#include "obs/report.h"

#include <cstdio>

#include "util/file_io.h"

namespace dace::obs {

namespace {

// Compact CSV rendering for bucket vectors: %.17g doubles / decimal uint64s
// joined by commas. Keeps histogram records flat (JsonEmitter has no array
// type) while staying trivially machine-parseable.
std::string JoinDoubles(const std::vector<double>& v) {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < v.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.17g", v[i]);
    if (i != 0) out += ',';
    out += buf;
  }
  return out;
}

std::string JoinCounts(const std::vector<uint64_t>& v) {
  std::string out;
  char buf[32];
  for (size_t i = 0; i < v.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v[i]));
    if (i != 0) out += ',';
    out += buf;
  }
  return out;
}

}  // namespace

namespace {

void AppendHistogramRecord(const MetricsRegistry::Snapshot::HistogramValue& h,
                           const char* kind, JsonEmitter* out) {
  out->Add(h.name)
      .Str("kind", kind)
      .Num("count", static_cast<double>(h.hist.count))
      .Num("sum", h.hist.sum)
      .Num("mean", h.hist.Mean())
      .Num("p50", h.hist.Quantile(0.50))
      .Num("p90", h.hist.Quantile(0.90))
      .Num("p99", h.hist.Quantile(0.99))
      .Str("bounds", JoinDoubles(h.hist.upper_bounds))
      .Str("counts", JoinCounts(h.hist.counts));
}

}  // namespace

void AppendMetricsRecords(const MetricsRegistry::Snapshot& snap,
                          JsonEmitter* out) {
  for (const auto& c : snap.counters) {
    out->Add(c.name)
        .Str("kind", "counter")
        .Num("value", static_cast<double>(c.value));
  }
  for (const auto& g : snap.gauges) {
    out->Add(g.name).Str("kind", "gauge").Num("value", g.value);
  }
  for (const auto& e : snap.ewmas) {
    out->Add(e.name)
        .Str("kind", "ewma")
        .Num("value", e.value)
        .Num("count", static_cast<double>(e.count));
  }
  for (const auto& h : snap.histograms) {
    AppendHistogramRecord(h, "histogram", out);
  }
  for (const auto& w : snap.windowed) {
    AppendHistogramRecord(w, "windowed_histogram", out);
  }
}

Status WriteMetricsReport(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("metrics report path is empty");
  }
  JsonEmitter emitter;
  AppendMetricsRecords(MetricsRegistry::Default()->TakeSnapshot(), &emitter);
  return WriteFileAtomic(path, emitter.Render());
}

}  // namespace dace::obs
