#ifndef DACE_OBS_WINDOW_H_
#define DACE_OBS_WINDOW_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "obs/metrics.h"

namespace dace::obs {

// Rotation policy of a WindowedHistogram: a ring of `sub_windows` fixed-
// bucket sub-histograms, each covering `width_ticks` ticks of a logical
// clock (util/clock.h). The live span a snapshot reports is therefore the
// last width_ticks * sub_windows ticks — a rolling view, unlike the
// cumulative-forever obs::Histogram.
struct WindowConfig {
  uint64_t width_ticks = 64;  // logical ticks per sub-window
  size_t sub_windows = 8;     // ring size; live span = width * sub_windows
};

// Fixed-bucket histogram over a rolling window of logical time. Rotation is
// driven entirely by the tick passed to Observe — sub-window index is
// (tick / width) % sub_windows, and entering a sub-window whose recorded
// epoch (tick / width) is stale clears it first — so two runs feeding the
// same (value, tick) sequence produce bit-identical snapshots, regardless
// of wall-clock scheduling. Ticks are expected to be non-decreasing (they
// come from a monotone LogicalClock); an out-of-order tick older than the
// live span folds into its stale sub-window's slot only if that epoch is
// still live, else it is dropped into the current epoch's window.
//
// Guarded by a mutex: the feedback path observes at ground-truth-arrival
// rate (per executed query), not at the per-plan prediction rate, so a
// ~20ns uncontended lock is noise there and buys TSan-provable snapshots.
class WindowedHistogram {
 public:
  WindowedHistogram(std::span<const double> upper_bounds,
                    const WindowConfig& config);
  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void Observe(double v, uint64_t tick);

  // Merged counts over the sub-windows still inside the live span of the
  // newest observed tick. Reuses Histogram::Snapshot so quantile/mean logic
  // and the report/exposition renderers are shared with cumulative
  // histograms.
  Histogram::Snapshot TakeSnapshot() const;

  const WindowConfig& config() const { return config_; }
  std::span<const double> bounds() const { return bounds_; }

  void Reset();

 private:
  struct SubWindow {
    uint64_t epoch = kNeverWritten;  // tick / width when last written
    std::vector<uint64_t> counts;    // bounds.size() + 1 (overflow)
    uint64_t count = 0;
    double sum = 0.0;
  };
  static constexpr uint64_t kNeverWritten = ~uint64_t{0};

  void ClearSubWindowLocked(SubWindow* w);

  const WindowConfig config_;
  std::vector<double> bounds_;

  mutable std::mutex mu_;
  std::vector<SubWindow> windows_;
  uint64_t newest_epoch_ = 0;  // max (tick / width) ever observed
  bool any_observed_ = false;
};

// Exponentially-weighted moving average of an observed signal:
//   ewma <- ewma + alpha * (v - ewma)
// seeded by the first observation. A mutex keeps (value, count) coherent —
// the EWMA recurrence is order-sensitive, so unlike Counter there is no
// sharded lock-free formulation that stays exact. Observe runs at feedback
// rate (per executed query), where an uncontended lock is noise. Higher
// alpha reacts faster; the drift monitor uses it as the "current accuracy"
// gauge the detectors sharpen into alarms.
class EwmaGauge {
 public:
  explicit EwmaGauge(double alpha);
  EwmaGauge(const EwmaGauge&) = delete;
  EwmaGauge& operator=(const EwmaGauge&) = delete;

  void Observe(double v);

  double Value() const;
  uint64_t Count() const;  // observations folded in
  double alpha() const { return alpha_; }

  void Reset();

 private:
  const double alpha_;
  mutable std::mutex mu_;
  double value_ = 0.0;
  uint64_t count_ = 0;
};

}  // namespace dace::obs

#endif  // DACE_OBS_WINDOW_H_
