#ifndef DACE_OBS_TRACE_H_
#define DACE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dace::obs {

// One completed span. `name` must be a string literal (or otherwise outlive
// the collector) — spans store the pointer, never a copy, so recording stays
// allocation-free.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t ts_us = 0;   // begin, µs since the process trace epoch
  uint64_t dur_us = 0;  // end - begin
  uint32_t tid = 0;     // small per-thread id (0 = first tracing thread)
  uint32_t depth = 0;   // span nesting depth at begin (0 = outermost)
};

// Fixed-capacity per-thread ring of completed spans: the newest kCapacity
// events win, older ones are overwritten. Each buffer is written only by its
// owning thread; the mutex exists for the (rare, cold) export/clear paths —
// uncontended lock/unlock on record keeps the hot path tens of nanoseconds
// while staying TSan-clean against a concurrent export.
class TraceBuffer {
 public:
  static constexpr size_t kCapacity = 8192;

  explicit TraceBuffer(uint32_t tid) : tid_(tid) {}

  void Record(const char* name, uint64_t ts_us, uint64_t dur_us,
              uint32_t depth) {
    std::lock_guard<std::mutex> lock(mu_);
    TraceEvent& e = events_[head_ % kCapacity];
    e.name = name;
    e.ts_us = ts_us;
    e.dur_us = dur_us;
    e.tid = tid_;
    e.depth = depth;
    ++head_;
  }

  // Oldest-to-newest copy of the retained events.
  void AppendTo(std::vector<TraceEvent>* out) const;
  // Total spans ever recorded (>= retained count once wrapped).
  uint64_t total_recorded() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  uint32_t tid_;
  uint64_t head_ = 0;  // next slot; min(head_, kCapacity) events are live
  TraceEvent events_[kCapacity];
};

// Owns every thread's ring buffer and renders them as Chrome trace_event
// JSON (chrome://tracing / Perfetto "traceEvents" format, "X" complete
// events). Buffers are created lazily on a thread's first span and live for
// the process lifetime, so events from exited pool threads still export.
class TraceCollector {
 public:
  // Leaky singleton: safe from atexit hooks.
  static TraceCollector* Default();

  // Tracing master switch. Off (the default) makes a span cost one relaxed
  // load. First query also honours the DACE_TRACE env var (any value except
  // "", "0" enables).
  static bool enabled() {
    return enabled_state().load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool on) {
    enabled_state().store(on, std::memory_order_relaxed);
  }

  // The calling thread's buffer, created on first use.
  TraceBuffer* BufferForThisThread();

  // All retained events, every thread, oldest-to-newest per thread.
  std::vector<TraceEvent> SnapshotEvents() const;
  uint64_t TotalRecorded() const;

  // {"traceEvents":[...]} — loads in chrome://tracing and Perfetto.
  std::string ExportChromeJson() const;
  bool WriteChromeJson(const std::string& path) const;

  // Drops every retained event (buffers stay registered). Test helper.
  void Clear();

 private:
  static std::atomic<bool>& enabled_state();

  mutable std::mutex mu_;  // guards buffers_ registration/iteration
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
};

namespace internal {

uint64_t TraceNowUs();  // µs since the process trace epoch (steady clock)

// Per-thread span nesting depth; maintained only while tracing is enabled,
// which is fine: depth is a debugging aid, not a correctness invariant.
inline uint32_t& SpanDepth() {
  thread_local uint32_t depth = 0;
  return depth;
}

}  // namespace internal

// RAII span: stamps begin at construction and records one TraceEvent into
// the calling thread's ring at destruction. When tracing is disabled the
// whole object is one relaxed load. Use via DACE_TRACE_SPAN.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!TraceCollector::enabled()) return;
    name_ = name;
    begin_us_ = internal::TraceNowUs();
    depth_ = internal::SpanDepth()++;
  }

  ~TraceSpan() {
    if (name_ == nullptr) return;
    --internal::SpanDepth();
    TraceCollector::Default()->BufferForThisThread()->Record(
        name_, begin_us_, internal::TraceNowUs() - begin_us_, depth_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  // null = tracing was off at construction
  uint64_t begin_us_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace dace::obs

// DACE_TRACE_SPAN("literal") — scoped span covering the rest of the
// enclosing block. Compiles to nothing under DACE_OBS_DISABLED so the
// zero-alloc inference path carries no instrumentation in opted-out builds.
#define DACE_OBS_CONCAT_INNER(a, b) a##b
#define DACE_OBS_CONCAT(a, b) DACE_OBS_CONCAT_INNER(a, b)

#ifdef DACE_OBS_DISABLED
#define DACE_TRACE_SPAN(name) \
  do {                        \
  } while (false)
#else
#define DACE_TRACE_SPAN(name) \
  ::dace::obs::TraceSpan DACE_OBS_CONCAT(dace_trace_span_, __LINE__)(name)
#endif

#endif  // DACE_OBS_TRACE_H_
