#include "obs/exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/report.h"
#include "util/logging.h"

namespace dace::obs {

namespace internal {

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    if (alpha || c == '_' || c == ':' || (digit && i > 0)) {
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty()) out = "_";
  return out;
}

std::string EscapeHelp(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace internal

namespace {

// %.17g matches the JSON report's round-trip-exact rendering; Prometheus
// spells the non-finite values NaN / +Inf / -Inf.
void AppendValue(std::string* out, double v) {
  if (std::isnan(v)) {
    *out += "NaN";
  } else if (std::isinf(v)) {
    *out += v > 0 ? "+Inf" : "-Inf";
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *out += buf;
  }
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += buf;
}

void AppendFamilyHeader(std::string* out, const std::string& family,
                        const std::string& raw_name, const char* kind_note,
                        const char* type) {
  *out += "# HELP " + family + " " + internal::EscapeHelp(raw_name);
  if (kind_note[0] != '\0') {
    *out += " ";
    *out += kind_note;
  }
  *out += "\n# TYPE " + family + " " + type + "\n";
}

void AppendHistogramFamily(std::string* out, const std::string& raw_name,
                           const Histogram::Snapshot& hist,
                           const char* kind_note) {
  const std::string family = internal::SanitizeMetricName(raw_name);
  AppendFamilyHeader(out, family, raw_name, kind_note, "histogram");
  uint64_t cumulative = 0;
  for (size_t i = 0; i < hist.upper_bounds.size(); ++i) {
    cumulative += hist.counts[i];
    *out += family + "_bucket{le=\"";
    AppendValue(out, hist.upper_bounds[i]);
    *out += "\"} ";
    AppendU64(out, cumulative);
    *out += "\n";
  }
  *out += family + "_bucket{le=\"+Inf\"} ";
  AppendU64(out, hist.count);
  *out += "\n" + family + "_sum ";
  AppendValue(out, hist.sum);
  *out += "\n" + family + "_count ";
  AppendU64(out, hist.count);
  *out += "\n";
}

}  // namespace

std::string RenderPrometheusText(const MetricsRegistry::Snapshot& snap) {
  std::string out;
  for (const auto& c : snap.counters) {
    const std::string family = internal::SanitizeMetricName(c.name);
    AppendFamilyHeader(&out, family, c.name, "", "counter");
    out += family + " ";
    AppendU64(&out, c.value);
    out += "\n";
  }
  for (const auto& g : snap.gauges) {
    const std::string family = internal::SanitizeMetricName(g.name);
    AppendFamilyHeader(&out, family, g.name, "", "gauge");
    out += family + " ";
    AppendValue(&out, g.value);
    out += "\n";
  }
  for (const auto& e : snap.ewmas) {
    const std::string family = internal::SanitizeMetricName(e.name);
    AppendFamilyHeader(&out, family, e.name, "(ewma)", "gauge");
    out += family + " ";
    AppendValue(&out, e.value);
    out += "\n";
  }
  for (const auto& h : snap.histograms) {
    AppendHistogramFamily(&out, h.name, h.hist, "");
  }
  for (const auto& w : snap.windowed) {
    AppendHistogramFamily(&out, w.name, w.hist, "(windowed)");
  }
  return out;
}

// ----------------------------------------------------- ExpositionServer ----

StatusOr<std::unique_ptr<ExpositionServer>> ExpositionServer::Start(
    MetricsRegistry* registry, int port) {
  DACE_CHECK(registry != nullptr);
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("metrics port out of range: " +
                                   std::to_string(port));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Status::Unavailable(
        "bind 127.0.0.1:" + std::to_string(port) + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) < 0) {
    const Status status =
        Status::Internal(std::string("listen(): ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const Status status =
        Status::Internal(std::string("getsockname(): ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  const int bound_port = static_cast<int>(ntohs(bound.sin_port));
  DACE_LOG(INFO) << "metrics exposition listening on 127.0.0.1:" << bound_port;
  return std::unique_ptr<ExpositionServer>(
      new ExpositionServer(registry, fd, bound_port));
}

ExpositionServer::ExpositionServer(MetricsRegistry* registry, int listen_fd,
                                   int port)
    : registry_(registry), listen_fd_(listen_fd), port_(port) {
  thread_ = std::thread([this] { AcceptLoop(); });
}

ExpositionServer::~ExpositionServer() {
  stop_.store(true, std::memory_order_relaxed);
  // shutdown() wakes the blocking accept(); close() alone does not on all
  // kernels.
  ::shutdown(listen_fd_, SHUT_RDWR);
  thread_.join();
  ::close(listen_fd_);
}

void ExpositionServer::AcceptLoop() {
  Counter* scrapes =
      MetricsRegistry::Default()->GetCounter("obs.exposition.scrapes");
  for (;;) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (stop_.load(std::memory_order_relaxed)) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listening socket is gone
    }
    // Drain (and ignore) whatever request line the client sent; the
    // endpoint serves exactly one document.
    char request[1024];
    (void)::read(conn, request, sizeof(request));
    const std::string body = RenderPrometheusText(registry_->TakeSnapshot());
    std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n" +
        body;
    size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n =
          ::write(conn, response.data() + sent, response.size() - sent);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    ::close(conn);
    scrapes->Add(1);
  }
}

// ----------------------------------------------- PeriodicSnapshotWriter ----

PeriodicSnapshotWriter::PeriodicSnapshotWriter(std::string path,
                                               int64_t period_ms)
    : path_(std::move(path)), period_ms_(period_ms > 0 ? period_ms : 1000) {
  thread_ = std::thread([this] { Loop(); });
}

PeriodicSnapshotWriter::~PeriodicSnapshotWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void PeriodicSnapshotWriter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait_for(lock, std::chrono::milliseconds(period_ms_),
                 [this] { return stop_; });
    lock.unlock();
    const Status status = WriteMetricsReport(path_);
    if (!status.ok()) {
      DACE_LOG(WARN) << "periodic metrics snapshot to " << path_
                     << " failed: " << status.ToString();
    } else {
      writes_.fetch_add(1, std::memory_order_relaxed);
    }
    lock.lock();
    if (stop_) return;  // the write above was the final one
  }
}

}  // namespace dace::obs
