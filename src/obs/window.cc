#include "obs/window.h"

#include <algorithm>

#include "util/logging.h"

namespace dace::obs {

// ---------------------------------------------------- WindowedHistogram ----

WindowedHistogram::WindowedHistogram(std::span<const double> upper_bounds,
                                     const WindowConfig& config)
    : config_(config), bounds_(upper_bounds.begin(), upper_bounds.end()) {
  DACE_CHECK(!bounds_.empty());
  DACE_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  DACE_CHECK_GT(config.width_ticks, 0u);
  DACE_CHECK_GT(config.sub_windows, 0u);
  windows_.resize(config.sub_windows);
  for (SubWindow& w : windows_) w.counts.assign(bounds_.size() + 1, 0);
}

void WindowedHistogram::ClearSubWindowLocked(SubWindow* w) {
  std::fill(w->counts.begin(), w->counts.end(), 0);
  w->count = 0;
  w->sum = 0.0;
}

void WindowedHistogram::Observe(double v, uint64_t tick) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  uint64_t epoch = tick / config_.width_ticks;
  std::lock_guard<std::mutex> lock(mu_);
  if (!any_observed_) {
    any_observed_ = true;
    newest_epoch_ = epoch;
  }
  if (epoch > newest_epoch_) newest_epoch_ = epoch;
  // An observation older than the live span cannot be represented without
  // resurrecting an expired sub-window; fold it into the current epoch so
  // it is counted, not lost (and document the monotone-tick expectation).
  if (newest_epoch_ >= config_.sub_windows &&
      epoch <= newest_epoch_ - config_.sub_windows) {
    epoch = newest_epoch_;
  }
  SubWindow& w = windows_[epoch % config_.sub_windows];
  if (w.epoch != epoch) {
    ClearSubWindowLocked(&w);
    w.epoch = epoch;
  }
  w.counts[bucket] += 1;
  w.count += 1;
  w.sum += v;
}

Histogram::Snapshot WindowedHistogram::TakeSnapshot() const {
  Histogram::Snapshot s;
  s.upper_bounds = bounds_;
  s.counts.assign(bounds_.size() + 1, 0);
  std::lock_guard<std::mutex> lock(mu_);
  for (const SubWindow& w : windows_) {
    if (w.epoch == kNeverWritten) continue;
    // Live iff within the last sub_windows epochs ending at newest_epoch_.
    if (w.epoch > newest_epoch_) continue;  // unreachable, defensive
    if (newest_epoch_ - w.epoch >= config_.sub_windows) continue;  // expired
    for (size_t i = 0; i < w.counts.size(); ++i) s.counts[i] += w.counts[i];
    s.count += w.count;
    s.sum += w.sum;
  }
  return s;
}

void WindowedHistogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (SubWindow& w : windows_) {
    ClearSubWindowLocked(&w);
    w.epoch = kNeverWritten;
  }
  newest_epoch_ = 0;
  any_observed_ = false;
}

// ------------------------------------------------------------ EwmaGauge ----

EwmaGauge::EwmaGauge(double alpha) : alpha_(alpha) {
  DACE_CHECK_GT(alpha, 0.0);
  DACE_CHECK_LE(alpha, 1.0);
}

void EwmaGauge::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  value_ = count_ == 0 ? v : value_ + alpha_ * (v - value_);
  ++count_;
}

double EwmaGauge::Value() const {
  std::lock_guard<std::mutex> lock(mu_);
  return value_;
}

uint64_t EwmaGauge::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

void EwmaGauge::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  value_ = 0.0;
  count_ = 0;
}

}  // namespace dace::obs
