#ifndef DACE_OBS_REPORT_H_
#define DACE_OBS_REPORT_H_

#include <string>

#include "obs/metrics.h"
#include "util/json_emitter.h"
#include "util/status.h"

namespace dace::obs {

// Renders a registry snapshot as flat JsonEmitter records, one per metric:
//   counters:   {"name": N, "kind": "counter", "value": V}
//   gauges:     {"name": N, "kind": "gauge", "value": V}
//   ewmas:      {"name": N, "kind": "ewma", "value", "count"}
//   histograms: {"name": N, "kind": "histogram", "count", "sum", "mean",
//                "p50", "p90", "p99", "bounds": "1,2,4,...",
//                "counts": "0,3,..."} (counts has one trailing overflow
//                bucket beyond bounds)
//   windowed:   like histograms, with kind "windowed_histogram" (counts
//                cover only the live rolling window)
// Record order is deterministic: counters, gauges, ewmas, histograms,
// windowed, each sorted by metric name.
void AppendMetricsRecords(const MetricsRegistry::Snapshot& snap,
                          JsonEmitter* out);

// Snapshots MetricsRegistry::Default() and atomically writes the records
// document to `path` ({"records": [...]}) via WriteFileAtomic — a reader
// (or a crash) never sees a truncated document. This is what the bench
// binaries' --metrics-json flag and the periodic sidecar writer drive.
Status WriteMetricsReport(const std::string& path);

}  // namespace dace::obs

#endif  // DACE_OBS_REPORT_H_
