#ifndef DACE_OBS_REPORT_H_
#define DACE_OBS_REPORT_H_

#include <string>

#include "obs/metrics.h"
#include "util/json_emitter.h"

namespace dace::obs {

// Renders a registry snapshot as flat JsonEmitter records, one per metric:
//   counters:   {"name": N, "kind": "counter", "value": V}
//   gauges:     {"name": N, "kind": "gauge", "value": V}
//   histograms: {"name": N, "kind": "histogram", "count", "sum", "mean",
//                "p50", "p90", "p99", "bounds": "1,2,4,...",
//                "counts": "0,3,..."} (counts has one trailing overflow
//                bucket beyond bounds)
// Record order is deterministic: counters, gauges, histograms, each sorted
// by metric name.
void AppendMetricsRecords(const MetricsRegistry::Snapshot& snap,
                          JsonEmitter* out);

// Snapshots MetricsRegistry::Default() and writes the records document to
// `path` ({"records": [...]}). Returns false on IO failure. This is what
// the bench binaries' --metrics-json flag drives.
bool WriteMetricsReport(const std::string& path);

}  // namespace dace::obs

#endif  // DACE_OBS_REPORT_H_
