#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dace::obs {

namespace internal {

uint64_t TraceNowUs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

}  // namespace internal

void TraceBuffer::AppendTo(std::vector<TraceEvent>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t live = head_ < kCapacity ? head_ : kCapacity;
  const uint64_t first = head_ - live;  // oldest retained event
  for (uint64_t i = first; i < head_; ++i) {
    out->push_back(events_[i % kCapacity]);
  }
}

uint64_t TraceBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
}

TraceCollector* TraceCollector::Default() {
  static TraceCollector* collector = new TraceCollector();
  return collector;
}

std::atomic<bool>& TraceCollector::enabled_state() {
  static std::atomic<bool>* state = [] {
    const char* env = std::getenv("DACE_TRACE");
    const bool on =
        env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
    return new std::atomic<bool>(on);
  }();
  return *state;
}

TraceBuffer* TraceCollector::BufferForThisThread() {
  thread_local TraceBuffer* buffer = nullptr;
  // A thread that outlives one collector use never re-registers; the pointer
  // is process-lifetime (buffers_ never shrinks).
  if (buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(
        std::make_unique<TraceBuffer>(static_cast<uint32_t>(buffers_.size())));
    buffer = buffers_.back().get();
  }
  return buffer;
}

std::vector<TraceEvent> TraceCollector::SnapshotEvents() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) buf->AppendTo(&out);
  return out;
}

uint64_t TraceCollector::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& buf : buffers_) total += buf->total_recorded();
  return total;
}

std::string TraceCollector::ExportChromeJson() const {
  const std::vector<TraceEvent> events = SnapshotEvents();
  std::string out = "{\"traceEvents\":[\n";
  char line[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"%s\",\"cat\":\"dace\",\"ph\":\"X\","
                  "\"ts\":%llu,\"dur\":%llu,\"pid\":1,\"tid\":%u}%s\n",
                  e.name, static_cast<unsigned long long>(e.ts_us),
                  static_cast<unsigned long long>(e.dur_us), e.tid,
                  i + 1 == events.size() ? "" : ",");
    out += line;
  }
  out += "]}\n";
  return out;
}

bool TraceCollector::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open trace path %s\n", path.c_str());
    return false;
  }
  const std::string json = ExportChromeJson();
  std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (ok) std::printf("wrote %s\n", path.c_str());
  return ok;
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) buf->Clear();
}

}  // namespace dace::obs
