#ifndef DACE_OBS_EXPOSITION_H_
#define DACE_OBS_EXPOSITION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/status.h"

namespace dace::obs {

// Renders a registry snapshot in the Prometheus text exposition format
// (version 0.0.4): counters, gauges, EWMA gauges (exposed as gauges),
// cumulative histograms, then windowed histograms (exposed as histograms
// over the live rolling window — their counts may shrink between scrapes,
// which Prometheus tolerates on gauge-like series and our own scrape
// validation accepts). Each family gets deterministic `# HELP` (the
// original dotted metric name, escaped) and `# TYPE` lines; families are
// ordered by kind then name, so two renders of the same snapshot are
// byte-identical (the golden test pins this).
std::string RenderPrometheusText(const MetricsRegistry::Snapshot& snap);

namespace internal {
// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; every other byte
// maps to '_' (the dotted registry names become underscored families).
std::string SanitizeMetricName(std::string_view name);
// HELP text escaping: backslash and newline.
std::string EscapeHelp(std::string_view text);
}  // namespace internal

// Minimal blocking pull endpoint: one thread accepts loopback TCP
// connections and answers every request with an HTTP/1.0 200 carrying
// RenderPrometheusText of a fresh registry snapshot — enough for
// `curl localhost:PORT/metrics` or a Prometheus scrape job, with no HTTP
// library dependency. Each scrape takes the registry snapshot at accept
// time, so a scrape observes every metric registered before it exactly
// once. Counts scrapes in "obs.exposition.scrapes".
class ExpositionServer {
 public:
  // Binds 127.0.0.1:port (port 0 = kernel-assigned, see port()) and starts
  // the accept thread. The registry pointer must outlive the server.
  static StatusOr<std::unique_ptr<ExpositionServer>> Start(
      MetricsRegistry* registry, int port);

  ~ExpositionServer();  // stops accepting and joins the thread

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  int port() const { return port_; }

 private:
  ExpositionServer(MetricsRegistry* registry, int listen_fd, int port);
  void AcceptLoop();

  MetricsRegistry* const registry_;
  const int listen_fd_;
  const int port_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// Push-side sidecar companion to the pull endpoint: a background thread
// that rewrites the metrics run report (obs/report.h, atomic rename — a
// reader never sees a torn file) every period until destruction, plus one
// final write on shutdown so the file always reflects the end state.
class PeriodicSnapshotWriter {
 public:
  PeriodicSnapshotWriter(std::string path, int64_t period_ms);
  ~PeriodicSnapshotWriter();

  PeriodicSnapshotWriter(const PeriodicSnapshotWriter&) = delete;
  PeriodicSnapshotWriter& operator=(const PeriodicSnapshotWriter&) = delete;

  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  const std::string path_;
  const int64_t period_ms_;
  std::atomic<uint64_t> writes_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dace::obs

#endif  // DACE_OBS_EXPOSITION_H_
