#ifndef DACE_OBS_DRIFT_H_
#define DACE_OBS_DRIFT_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/window.h"
#include "util/clock.h"

namespace dace::obs {

// ------------------------------------------------------- Page-Hinkley ----

// One-sided Page-Hinkley test for an upward mean shift of a streamed
// signal (here: log q-error — accuracy getting worse). Classic recurrence:
//   n += 1;  mean += (x - mean) / n
//   m += x - mean - delta;   M = min(M, m)
// and the alarm fires when m - M > lambda (after a burn-in of min_samples).
// delta absorbs benign wander (alarm only on shifts meaningfully above the
// running mean); lambda trades detection delay against false alarms.
struct PageHinkleyConfig {
  double delta = 0.05;
  double lambda = 12.0;
  uint64_t min_samples = 64;
};

class PageHinkley {
 public:
  explicit PageHinkley(const PageHinkleyConfig& config) : config_(config) {}

  // Folds in one observation; true = the test crossed lambda on this
  // observation. The caller decides whether to Reset() (restart the test)
  // or keep accumulating. NOT thread-safe; guard externally.
  bool Observe(double x);

  void Reset();

  double statistic() const { return m_ - min_m_; }
  double mean() const { return mean_; }
  uint64_t samples() const { return n_; }
  const PageHinkleyConfig& config() const { return config_; }

 private:
  const PageHinkleyConfig config_;
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m_ = 0.0;
  double min_m_ = 0.0;
};

// ------------------------------------------------- two-sample KS test ----

// Two-sample Kolmogorov–Smirnov distance computed from two histograms over
// IDENTICAL bucket bounds: max over bucket boundaries of the empirical-CDF
// gap. Binning makes the statistic conservative (the true sup over all x is
// at least the sup over boundaries), which is the safe direction for a
// drift alarm. Returns 0 if either side is empty.
double KsStatistic(const Histogram::Snapshot& a, const Histogram::Snapshot& b);

// Rejection threshold c(alpha) * sqrt((n + m) / (n * m)). Common c values:
// 1.36 (alpha 0.05), 1.63 (alpha 0.01), 1.95 (alpha 0.001).
double KsThreshold(double c_alpha, uint64_t n, uint64_t m);

struct KsConfig {
  double c_alpha = 1.95;      // alpha = 0.001: windows re-test, so be strict
  uint64_t min_samples = 64;  // both sides must hold at least this many
};

// ------------------------------------------------------------- alarms ----

// One drift-alarm event, as delivered to callbacks and retained on the
// monitor for polling consumers (the future adaptation loop).
struct Alarm {
  std::string source;    // monitor label, e.g. the serving tenant
  std::string detector;  // "page_hinkley" | "ks"
  uint64_t tick = 0;     // monitor logical time at the alarm
  double statistic = 0.0;
  double threshold = 0.0;
};

using AlarmCallback = std::function<void(const Alarm&)>;

// ---------------------------------------------------- AccuracyMonitor ----

struct AccuracyMonitorConfig {
  WindowConfig window;           // rolling q-error histogram shape
  double ewma_alpha = 0.05;      // accuracy gauges' smoothing
  PageHinkleyConfig page_hinkley;
  KsConfig ks;
  uint64_t ks_check_every = 32;  // KS cadence, in joined observations
  // Capture the KS reference automatically once the live window holds
  // ks.min_samples observations and no reference exists yet (a monitor that
  // never sees an explicit CaptureReference — e.g. a tenant that never
  // swaps — still gets KS coverage of its post-warmup distribution).
  bool auto_reference = true;
};

// Online accuracy monitor for one prediction source (a serving tenant): the
// piece that turns joined (predicted, actual) pairs into rolling metrics
// and drift alarms. Per observation it
//   - advances its logical clock one tick,
//   - records q-error into a registry-registered WindowedHistogram
//     ("accuracy.<source>.qerror.window") and EWMA gauges
//     ("accuracy.<source>.log_qerror.ewma", "accuracy.<source>.bias.ewma" —
//     bias is signed log(pred/actual), the over/under-estimation trend),
//   - feeds log q-error to the Page-Hinkley test, and
//   - every ks_check_every observations runs the two-sample KS test of the
//     live window against the reference snapshot (captured at model-swap
//     time via CaptureReference, or automatically after warmup).
// An alarm increments the process-wide "drift.alarms" counter and the
// per-source "drift.<source>.alarms" counter, latches the
// "drift.<source>.alarmed" gauge to 1 (cleared by CaptureReference), logs
// at WARN, and invokes every registered callback outside the monitor lock.
// Page-Hinkley restarts itself after alarming; KS stays silent until a new
// reference is captured (re-testing the same drifted window would refire
// every check).
class AccuracyMonitor {
 public:
  AccuracyMonitor(std::string source, const AccuracyMonitorConfig& config,
                  MetricsRegistry* registry);
  AccuracyMonitor(const AccuracyMonitor&) = delete;
  AccuracyMonitor& operator=(const AccuracyMonitor&) = delete;

  // One ground-truth joined observation. Non-positive inputs are clamped to
  // a tiny epsilon (q-error needs both sides positive). Thread-safe.
  void ObserveQError(double predicted_ms, double actual_ms);

  // Snapshots the live window as the new KS reference and restarts both
  // detectors — call at model-swap time (the new model deserves a fresh
  // baseline) or to acknowledge an alarm.
  void CaptureReference();

  void AddAlarmCallback(AlarmCallback callback);

  // Retained alarm history, oldest first.
  std::vector<Alarm> Alarms() const;

  uint64_t tick() const { return clock_.Now(); }
  uint64_t observations() const;
  bool has_reference() const;
  const std::string& source() const { return source_; }
  const AccuracyMonitorConfig& config() const { return config_; }

  // Live rolling view of the q-error window (merged sub-windows).
  Histogram::Snapshot WindowSnapshot() const { return window_->TakeSnapshot(); }

  // Median q-error of the live rolling window (0 if empty) — the scalar the
  // adaptation gate and the drift-recovery CI stage compare against their
  // pre-drift baselines.
  double WindowMedianQError() const { return WindowSnapshot().Quantile(0.5); }

 private:
  void RaiseLocked(const char* detector, double statistic, double threshold,
                   uint64_t tick, std::vector<AlarmCallback>* callbacks,
                   Alarm* out);

  const std::string source_;
  const AccuracyMonitorConfig config_;
  LogicalClock clock_;

  // Registry-registered handles (owned by the registry, shared with
  // snapshots/exposition).
  WindowedHistogram* window_;
  EwmaGauge* log_qerror_ewma_;
  EwmaGauge* bias_ewma_;
  Gauge* ph_statistic_gauge_;
  Gauge* ks_statistic_gauge_;
  Gauge* alarmed_gauge_;
  Counter* alarms_total_;   // process-wide drift.alarms
  Counter* alarms_source_;  // drift.<source>.alarms

  mutable std::mutex mu_;
  PageHinkley page_hinkley_;
  Histogram::Snapshot reference_;  // empty count == no reference yet
  bool ks_silenced_ = false;       // latched after a KS alarm
  uint64_t observations_ = 0;
  std::vector<Alarm> alarms_;
  std::vector<AlarmCallback> callbacks_;
};

}  // namespace dace::obs

#endif  // DACE_OBS_DRIFT_H_
