#include "obs/drift.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/trace.h"
#include "util/logging.h"

namespace dace::obs {

// ------------------------------------------------------- Page-Hinkley ----

bool PageHinkley::Observe(double x) {
  ++n_;
  mean_ += (x - mean_) / static_cast<double>(n_);
  m_ += x - mean_ - config_.delta;
  if (m_ < min_m_) min_m_ = m_;
  return n_ >= config_.min_samples && statistic() > config_.lambda;
}

void PageHinkley::Reset() {
  n_ = 0;
  mean_ = 0.0;
  m_ = 0.0;
  min_m_ = 0.0;
}

// ------------------------------------------------- two-sample KS test ----

double KsStatistic(const Histogram::Snapshot& a, const Histogram::Snapshot& b) {
  if (a.count == 0 || b.count == 0) return 0.0;
  DACE_CHECK_EQ(a.counts.size(), b.counts.size());
  const double na = static_cast<double>(a.count);
  const double nb = static_cast<double>(b.count);
  double cum_a = 0.0, cum_b = 0.0, d = 0.0;
  // The last bucket (overflow) brings both CDFs to 1, so the loop may skip
  // it; iterating anyway costs nothing and keeps the invariant visible.
  for (size_t i = 0; i < a.counts.size(); ++i) {
    cum_a += static_cast<double>(a.counts[i]);
    cum_b += static_cast<double>(b.counts[i]);
    d = std::max(d, std::abs(cum_a / na - cum_b / nb));
  }
  return d;
}

double KsThreshold(double c_alpha, uint64_t n, uint64_t m) {
  if (n == 0 || m == 0) return 1.0;  // unreachable distance: never alarms
  const double dn = static_cast<double>(n);
  const double dm = static_cast<double>(m);
  return c_alpha * std::sqrt((dn + dm) / (dn * dm));
}

// ---------------------------------------------------- AccuracyMonitor ----

namespace {
constexpr double kMinMs = 1e-6;  // q-error needs both sides positive
}  // namespace

AccuracyMonitor::AccuracyMonitor(std::string source,
                                 const AccuracyMonitorConfig& config,
                                 MetricsRegistry* registry)
    : source_(std::move(source)),
      config_(config),
      page_hinkley_(config.page_hinkley) {
  DACE_CHECK(registry != nullptr);
  DACE_CHECK_GT(config.ks_check_every, 0u);
  window_ = registry->GetWindowedHistogram(
      "accuracy." + source_ + ".qerror.window", QErrorBuckets(), config.window);
  log_qerror_ewma_ = registry->GetEwma(
      "accuracy." + source_ + ".log_qerror.ewma", config.ewma_alpha);
  bias_ewma_ =
      registry->GetEwma("accuracy." + source_ + ".bias.ewma", config.ewma_alpha);
  ph_statistic_gauge_ =
      registry->GetGauge("drift." + source_ + ".ph_statistic");
  ks_statistic_gauge_ =
      registry->GetGauge("drift." + source_ + ".ks_statistic");
  alarmed_gauge_ = registry->GetGauge("drift." + source_ + ".alarmed");
  alarms_total_ = registry->GetCounter("drift.alarms");
  alarms_source_ = registry->GetCounter("drift." + source_ + ".alarms");
}

void AccuracyMonitor::RaiseLocked(const char* detector, double statistic,
                                  double threshold, uint64_t tick,
                                  std::vector<AlarmCallback>* callbacks,
                                  Alarm* out) {
  Alarm alarm;
  alarm.source = source_;
  alarm.detector = detector;
  alarm.tick = tick;
  alarm.statistic = statistic;
  alarm.threshold = threshold;
  alarms_.push_back(alarm);
  alarms_total_->Add(1);
  alarms_source_->Add(1);
  alarmed_gauge_->Set(1.0);
  DACE_LOG(WARN) << "drift alarm [" << detector << "] on '" << source_
                 << "' at tick " << tick << ": statistic " << statistic
                 << " > threshold " << threshold;
  *callbacks = callbacks_;  // invoked by the caller outside the lock
  *out = std::move(alarm);
}

void AccuracyMonitor::ObserveQError(double predicted_ms, double actual_ms) {
  const double pred = std::max(predicted_ms, kMinMs);
  const double actual = std::max(actual_ms, kMinMs);
  const double q = std::max(pred / actual, actual / pred);
  const double log_q = std::log(q);
  const uint64_t tick = clock_.Advance();

  window_->Observe(q, tick);
  log_qerror_ewma_->Observe(log_q);
  bias_ewma_->Observe(std::log(pred / actual));

  // Up to two alarms can fire on one observation (both detectors crossing
  // on the same sample); callbacks run after the lock is dropped.
  Alarm raised[2];
  std::vector<AlarmCallback> callbacks[2];
  int raised_count = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++observations_;

    if (page_hinkley_.Observe(log_q)) {
      RaiseLocked("page_hinkley", page_hinkley_.statistic(),
                  config_.page_hinkley.lambda, tick, &callbacks[raised_count],
                  &raised[raised_count]);
      ++raised_count;
      page_hinkley_.Reset();  // restart: one alarm per sustained shift
    }
    ph_statistic_gauge_->Set(page_hinkley_.statistic());

    if (observations_ % config_.ks_check_every == 0) {
      DACE_TRACE_SPAN("drift.ks_check");
      const Histogram::Snapshot live = window_->TakeSnapshot();
      if (reference_.count == 0 && config_.auto_reference &&
          live.count >= config_.ks.min_samples) {
        reference_ = live;  // post-warmup baseline for swap-less sources
      } else if (!ks_silenced_ && reference_.count >= config_.ks.min_samples &&
                 live.count >= config_.ks.min_samples) {
        const double d = KsStatistic(live, reference_);
        const double threshold =
            KsThreshold(config_.ks.c_alpha, live.count, reference_.count);
        ks_statistic_gauge_->Set(d);
        if (d > threshold) {
          RaiseLocked("ks", d, threshold, tick, &callbacks[raised_count],
                      &raised[raised_count]);
          ++raised_count;
          ks_silenced_ = true;  // silent until a new reference is captured
        }
      }
    }
  }
  // Re-entrancy contract (pinned by drift_reentrancy_test): mu_ is NOT held
  // here, so a callback may call back into this monitor — CaptureReference
  // to acknowledge, ObserveQError, Alarms, AddAlarmCallback — or into the
  // serving layer (NotifySwap lands on CaptureReference) without deadlock.
  // The adaptation controller's alarm subscription relies on this.
  for (int i = 0; i < raised_count; ++i) {
    for (const AlarmCallback& cb : callbacks[i]) cb(raised[i]);
  }
}

void AccuracyMonitor::CaptureReference() {
  std::lock_guard<std::mutex> lock(mu_);
  reference_ = window_->TakeSnapshot();
  page_hinkley_.Reset();
  ks_silenced_ = false;
  alarmed_gauge_->Set(0.0);
  ph_statistic_gauge_->Set(0.0);
  ks_statistic_gauge_->Set(0.0);
}

void AccuracyMonitor::AddAlarmCallback(AlarmCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_.push_back(std::move(callback));
}

std::vector<Alarm> AccuracyMonitor::Alarms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alarms_;
}

uint64_t AccuracyMonitor::observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_;
}

bool AccuracyMonitor::has_reference() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reference_.count > 0;
}

}  // namespace dace::obs
